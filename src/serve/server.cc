#include "serve/server.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <tuple>
#include <sstream>
#include <thread>

#include "common/env.hh"
#include "obs/trace_span.hh"
#include "serve/packet.hh"
#include "serve/ring_buffer.hh"
#include "serve/transport.hh"
#include "sim/cell_executor.hh"
#include "sim/checkpoint.hh"
#include "sim/experiment.hh"
#include "sim/fault_injection.hh"

namespace ev8
{

namespace
{

/** Deterministic pause of an injected ring_stall fault. */
constexpr auto kRingStallPause = std::chrono::milliseconds(25);

/** Writes the ring counters as one JSON object member set. */
void
writeRingStats(JsonWriter &w, const RingStats &stats)
{
    w.beginObject();
    w.key("pushed");
    w.value(stats.pushed);
    w.key("popped");
    w.value(stats.popped);
    w.key("push_stall_ns");
    w.value(stats.pushStallNs);
    w.key("pop_stall_ns");
    w.value(stats.popStallNs);
    w.key("max_depth");
    w.value(stats.maxDepth);
    w.endObject();
}

} // namespace

/**
 * One served session: a named grid streamed through the transport and
 * executed by the shared cell core. The session owns its outputs; the
 * server's scheduling (run slots, sibling sessions) cannot change a
 * single byte of them.
 */
class PredictionServer::Session
{
  public:
    Session(PredictionServer &server, ServeRequest open,
            const GridSpec &grid)
        : server_(server), open_(std::move(open)), grid_(grid),
          name_(open_.session), nbench_(specint95Suite().size()),
          ring_(server.limits().ringCapacity)
    {
        SimConfig config = baseConfig(grid_);
        config.profileTiming = open_.timing;
        config.forceGenericKernel = open_.forceGeneric;
        rows_ = buildGridRows(grid_, config);
        outputs_.resize(cells());
        requests_.resize(cells());
        for (size_t i = 0; i < cells(); ++i) {
            const size_t r = i / nbench_;
            const size_t b = i % nbench_;
            CellRequest &req = requests_[i];
            // The consumer repoints current_ at each benchmark's
            // reassembled stream before running that benchmark's cells;
            // retries of a cell re-read the same assembled stream.
            req.stream = [this]() -> const BlockStream & {
                return *current_;
            };
            req.profile = &specint95Suite()[b].profile;
            req.factory = rows_[r].factory;
            req.config = rows_[r].config;
            req.wantEvents = open_.wantEvents;
            req.wantMetrics = open_.wantMetrics;
            req.rowLabel = rows_[r].label;
            req.rowIndex = r;
            // Per-session fault identity: lets EV8_FAULT_SPEC kill one
            // session by name ("session_drop/s1/") while its siblings'
            // occurrence counters stay untouched.
            req.key = name_ + "/g0/r" + std::to_string(r) + "/"
                + req.profile->name;
            req.label = name_ + ":"
                + (req.rowLabel.empty()
                       ? req.profile->name
                       : req.rowLabel + "/" + req.profile->name);
            req.sessionFaults = true;
        }
    }

    ~Session()
    {
        // A session destroyed mid-run (server teardown) finishes
        // gracefully: both threads have bounded work left.
        if (producer_.joinable())
            producer_.join();
        if (consumer_.joinable())
            consumer_.join();
    }

    const std::string &name() const { return name_; }
    size_t rows() const { return rows_.size(); }
    size_t benches() const { return nbench_; }
    size_t cells() const { return rows_.size() * nbench_; }

    /** Launches the pipeline. Returns false when already started. */
    bool
    start()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (state_ != State::Open)
                return false;
            state_ = State::Running;
        }
        producer_ = std::thread([this] { produce(); });
        consumer_ = std::thread([this] { consume(); });
        return true;
    }

    /** Appends the live-progress members of a snapshot reply. */
    void
    writeSnapshot(JsonWriter &w)
    {
        ScopedSpan span(SpanPhase::Snapshot, "serve.snapshot");
        span.arg("session", name_);
        w.key("state");
        w.value(stateName());
        w.key("rows");
        w.value(static_cast<uint64_t>(rows_.size()));
        w.key("benches");
        w.value(static_cast<uint64_t>(nbench_));
        w.key("cells_total");
        w.value(static_cast<uint64_t>(cells()));
        w.key("cells_done");
        w.value(cellsDone_.load(std::memory_order_relaxed));
        w.key("failures");
        w.value(failedCells_.load(std::memory_order_relaxed));
        w.key("packets");
        w.value(packetsFramed_.load(std::memory_order_relaxed));
        w.key("ring");
        writeRingStats(w, ring_.stats());
        w.key("expired");
        w.value(wasExpired());
    }

    /**
     * Blocks until the run finishes (no-op when never started/done).
     * The blocked waiter pins the session's lease -- a client stuck in
     * "wait" IS the heartbeat, so the reaper must not expire it under
     * them -- and the lease is renewed when the wait returns.
     */
    void
    awaitDone()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ++waiters_;
        done_.wait(lock, [&] { return state_ != State::Running; });
        --waiters_;
        lastTouch_ = std::chrono::steady_clock::now();
    }

    /** Renews the lease. Called by every client op naming the session. */
    void
    touch()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        lastTouch_ = std::chrono::steady_clock::now();
    }

    /**
     * Has the lease lapsed? True for a session that no client op has
     * renewed within @p timeout and no blocked waiter is pinning --
     * including one that reached Done but whose results nobody ever
     * collected (a wait reply marks delivery; without it the vanished
     * client's slot would be pinned forever).
     */
    bool
    leaseStale(std::chrono::steady_clock::time_point now,
               std::chrono::milliseconds timeout)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (state_ == State::Done && delivered_)
            return false; // already retirable; nothing to expire
        return !expired_ && waiters_ == 0
            && now - lastTouch_ > timeout;
    }

    /**
     * Force-expires the session: its remaining cells fail with
     * @p reason as structured CellFailures and it reaches Done in
     * bounded time, after which it is retirable (the vanished client's
     * ring, threads and admission slot get reclaimed). Idempotent. A
     * session already Done just gets the expired mark -- its results
     * were computed but abandoned, and the mark makes it retirable.
     */
    void
    expire(const std::string &reason)
    {
        bool failNow = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (expired_)
                return;
            if (state_ == State::Done) {
                if (!delivered_) {
                    expired_ = true;
                    expireError_ = reason;
                }
                return;
            }
            expired_ = true;
            expireError_ = reason;
            if (state_ == State::Open) {
                // Claim the never-started session (a racing start() is
                // refused); no threads exist, so fail the cells here.
                state_ = State::Running;
                failNow = true;
            }
        }
        if (failNow) {
            failFrom(0, reason);
            sweepFailures();
            server_.noteSessionDone();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                state_ = State::Done;
            }
            done_.notify_all();
        } else {
            // Running: abort the transport; the consumer fails the
            // remaining cells (with the expiry reason -- see
            // runCells()) and settles to Done on its own.
            ring_.abort();
        }
    }

    /** Was the session force-expired (lease lapse or drain deadline)? */
    bool
    wasExpired()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return expired_;
    }

    /** The expiry reason; "" when not expired. */
    std::string
    expireError()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return expired_ ? expireError_ : std::string();
    }

    const std::string &gridId() const { return grid_.id; }

    bool
    finished()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return state_ == State::Done;
    }

    /**
     * Finished AND either a waiter has been handed the full results
     * payload or the session was force-expired: it holds nothing a
     * client can still come back for, so admission may retire it to
     * make room (handleOpen) and the reaper may reclaim it. Once a
     * session's state is Done its threads touch no server state, so
     * destroying it under the server mutex cannot deadlock.
     */
    bool
    retirable()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return state_ == State::Done && (delivered_ || expired_);
    }

    /** Records that a wait reply carried the results (retire signal). */
    void
    markDelivered()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        delivered_ = true;
    }

    /**
     * Appends the full result members of a wait reply: one checkpoint
     * codec record per cell, in cell-index (row-major) order -- the
     * byte-exact payload the client merges -- plus the structured
     * failures.
     */
    void
    writeResults(JsonWriter &w)
    {
        w.key("cells");
        w.beginArray();
        for (size_t i = 0; i < outputs_.size(); ++i) {
            const CellOutput &out = outputs_[i];
            w.value(encodeCellRecord(i, out.result, out.metrics,
                                     out.events));
        }
        w.endArray();
        w.key("failures");
        w.beginArray();
        for (const CellFailure &f : failures_)
            writeFailure(w, f);
        w.endArray();
    }

  private:
    enum class State
    {
        Open,
        Running,
        Done,
    };

    const char *
    stateName()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        switch (state_) {
          case State::Open:
            return "open";
          case State::Running:
            return "running";
          case State::Done:
            return "done";
        }
        return "?";
    }

    /**
     * Producer thread: frame every benchmark's pre-decoded stream, in
     * suite order, into the ring. The ring's backpressure bounds how
     * far this thread can run ahead of the simulation.
     */
    void
    produce()
    {
        SpanTracer &tracer = SpanTracer::global();
        tracer.setThreadName("serve:" + name_ + ":producer");
        FaultInjector &faults = FaultInjector::global();
        try {
            for (size_t b = 0; b < nbench_; ++b) {
                StreamFramer framer(server_.runner().blockStream(b),
                                    server_.limits().blocksPerPacket);
                Packet p;
                // A garbage_frame fault on a Blocks frame drops it and
                // rebases every later seq so the gap is invisible until
                // End's totals check -- the corruption the assembler
                // can only catch by accounting, not by ordering.
                uint64_t seqBias = 0;
                while (framer.next(p)) {
                    const uint64_t idx = packetsFramed_.fetch_add(
                        1, std::memory_order_relaxed);
                    bool dropFrame = false;
                    if (faults.enabled()) {
                        const std::string key =
                            name_ + "/p" + std::to_string(idx);
                        if (faults.fires(FaultPoint::RingStall, key)) {
                            // Timing-only: the packet is merely late.
                            const uint64_t t0 = tracer.nowNs();
                            std::this_thread::sleep_for(kRingStallPause);
                            tracer.addPhase(SpanPhase::Stall,
                                            tracer.nowNs() - t0);
                        }
                        if (faults.fires(FaultPoint::PartialWrite, key)) {
                            // Torn frame: half the payload vanished.
                            p.payload.resize(p.payload.size() / 2);
                        }
                        if (faults.fires(FaultPoint::GarbageFrame, key)) {
                            switch (p.type) {
                              case Packet::Type::Hello:
                                // Byte garbage: the header no longer
                                // parses.
                                for (char &c : p.payload)
                                    c = static_cast<char>(0xFF);
                                break;
                              case Packet::Type::Blocks:
                                dropFrame = true;
                                break;
                              case Packet::Type::End:
                                // Out-of-order End (reorder detection).
                                p.seq += 1;
                                break;
                            }
                        }
                    }
                    if (dropFrame) {
                        ++seqBias;
                        continue;
                    }
                    p.seq -= std::min<uint64_t>(seqBias, p.seq);
                    ScopedSpan span(SpanPhase::Enqueue, "serve.enqueue");
                    if (!ring_.push(std::move(p)))
                        return; // aborted: the consumer gave up
                }
            }
            ring_.close();
        } catch (const std::exception &err) {
            noteTransportError(std::string("producer: ") + err.what());
            ring_.abort();
        }
    }

    /**
     * Consumer thread: reassemble each benchmark from its frames, run
     * that benchmark's cells through the shared executor, repeat. A
     * transport fault fails this session's remaining cells and leaves
     * every other session untouched.
     */
    void
    consume()
    {
        SpanTracer::global().setThreadName("serve:" + name_);
        server_.acquireRunSlot();
        {
            ScopedSpan span(SpanPhase::SessionRun, "serve.session_run");
            span.arg("session", name_);
            span.arg("grid", grid_.id);
            span.arg("cells", static_cast<uint64_t>(cells()));
            runCells();
        }
        server_.releaseRunSlot();

        sweepFailures();
        // Count the session done before waking its waiters, so a
        // client that sequences wait -> stats always sees itself.
        server_.noteSessionDone();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            state_ = State::Done;
        }
        done_.notify_all();
    }

    void
    runCells()
    {
        CellExecutor executor;
        const bool fused = ExperimentEngine::fusedEnabled();
        const size_t laneCap = ExperimentEngine::fusedLaneCap();
        for (size_t b = 0; b < nbench_; ++b) {
            StreamAssembler assembler;
            try {
                Packet p;
                while (!assembler.done()) {
                    if (!ring_.pop(p)) {
                        throw PacketError(
                            "transport closed mid-stream");
                    }
                    assembler.accept(p);
                }
            } catch (const std::exception &err) {
                // An abort caused by a force-expiry surfaces as the
                // expiry reason, not as a generic transport error.
                const std::string reason = expireError();
                failFrom(b, reason.empty()
                                ? std::string("transport: ") + err.what()
                                : reason);
                ring_.abort();
                return;
            }
            const BlockStream stream = assembler.take();
            current_ = &stream;

            // This benchmark's cells, in row order. The open flags are
            // session-wide, so a lane group is determined by the row's
            // walk config (rows may override the grid preset); group by
            // the same simulation-field key the batch engine's fuse key
            // uses, preserving row order within each group and opening
            // a fresh group at the lane cap, so the groups match the
            // batch engine's byte for byte.
            std::vector<size_t> bench_cells;
            bench_cells.reserve(rows_.size());
            for (size_t r = 0; r < rows_.size(); ++r)
                bench_cells.push_back(r * nbench_ + b);
            if (!fused) {
                for (const size_t i : bench_cells)
                    executor.runGuarded(i, requests_[i], outputs_[i]);
            } else {
                using WalkKey = std::tuple<int, unsigned, bool>;
                std::vector<std::vector<size_t>> groups;
                std::map<WalkKey, size_t> open;
                for (const size_t i : bench_cells) {
                    const SimConfig &c = requests_[i].config;
                    const WalkKey key{static_cast<int>(c.history),
                                      c.historyAge, c.assignBanks};
                    auto [it, inserted] =
                        open.try_emplace(key, groups.size());
                    if (inserted) {
                        groups.emplace_back();
                    } else if (groups[it->second].size() >= laneCap) {
                        it->second = groups.size();
                        groups.emplace_back();
                    }
                    groups[it->second].push_back(i);
                }
                for (const auto &cells : groups)
                    executor.runGroup(cells, requests_, outputs_);
            }
            current_ = nullptr;
            for (const size_t i : bench_cells) {
                if (outputs_[i].failed)
                    failedCells_.fetch_add(1,
                                           std::memory_order_relaxed);
            }
            cellsDone_.fetch_add(bench_cells.size(),
                                 std::memory_order_relaxed);
        }
    }

    /** Fails every cell of benchmarks @p from_bench.. with @p error. */
    void
    failFrom(size_t from_bench, const std::string &error)
    {
        for (size_t b = from_bench; b < nbench_; ++b) {
            for (size_t r = 0; r < rows_.size(); ++r) {
                CellOutput &out = outputs_[r * nbench_ + b];
                out.failed = true;
                out.attempts = 0;
                out.error = error;
                failedCells_.fetch_add(1, std::memory_order_relaxed);
            }
            cellsDone_.fetch_add(rows_.size(),
                                 std::memory_order_relaxed);
        }
    }

    /**
     * Row-major failure sweep, mirroring the batch merge loop's
     * submission-order CellFailure construction. Called exactly once,
     * by whichever path finishes the session (consume() or expire()).
     */
    void
    sweepFailures()
    {
        for (size_t i = 0; i < outputs_.size(); ++i) {
            CellOutput &out = outputs_[i];
            if (!out.failed)
                continue;
            CellFailure failure;
            failure.row = i / nbench_;
            failure.rowLabel = rows_[i / nbench_].label;
            failure.bench = requests_[i].profile->name;
            failure.attempts = out.attempts;
            failure.error = out.error;
            failure.attemptNs = out.attemptNs;
            failures_.push_back(std::move(failure));
        }
    }

    void
    noteTransportError(const std::string &error)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (transportError_.empty())
            transportError_ = error;
    }

    PredictionServer &server_;
    const ServeRequest open_;
    const GridSpec &grid_;
    const std::string name_;
    const size_t nbench_;

    std::vector<GridRow> rows_;
    std::vector<CellRequest> requests_;
    std::vector<CellOutput> outputs_;
    std::vector<CellFailure> failures_; //!< filled once, before Done

    SpscRing<Packet> ring_;
    const BlockStream *current_ = nullptr; //!< consumer-thread only
    std::thread producer_;
    std::thread consumer_;

    std::atomic<uint64_t> cellsDone_{0};
    std::atomic<uint64_t> failedCells_{0};
    std::atomic<uint64_t> packetsFramed_{0};

    std::mutex mutex_; //!< guards state_, delivered_, lease fields
    std::condition_variable done_;
    State state_ = State::Open;
    bool delivered_ = false;
    std::string transportError_;

    // Lease state (guarded by mutex_).
    std::chrono::steady_clock::time_point lastTouch_ =
        std::chrono::steady_clock::now();
    size_t waiters_ = 0;    //!< blocked awaitDone() callers (lease pin)
    bool expired_ = false;  //!< force-expired (lease lapse or drain)
    std::string expireError_;

    friend class PredictionServer;
};

ServeLimits
PredictionServer::defaultLimits()
{
    ServeLimits limits;
    limits.maxSessions = static_cast<size_t>(
        strictEnvU64("EV8_SERVE_MAX_SESSIONS", 1, 256, 8));
    limits.ringCapacity = static_cast<size_t>(
        strictEnvU64("EV8_SERVE_RING_CAP", 1, 65536, 64));
    limits.blocksPerPacket = static_cast<size_t>(
        strictEnvU64("EV8_SERVE_BLOCKS_PER_PACKET", 1, 1u << 20, 4096));
    limits.idleTimeoutMs =
        strictEnvU64("EV8_SERVE_IDLE_TIMEOUT_MS", 0, 3600000, 0);
    limits.heartbeatMs =
        strictEnvU64("EV8_SERVE_HEARTBEAT_MS", 10, 60000, 250);
    return limits;
}

PredictionServer::PredictionServer(ServeLimits limits, unsigned jobs)
    : limits_(limits),
      jobs_(jobs != 0 ? jobs : ExperimentEngine::defaultJobs())
{
    if (limits_.idleTimeoutMs > 0) {
        reaper_ = std::thread([this] {
            SpanTracer::global().setThreadName("serve:reaper");
            std::unique_lock<std::mutex> lock(mutex_);
            while (!reaperStop_) {
                reaperWake_.wait_for(
                    lock, std::chrono::milliseconds(limits_.heartbeatMs));
                if (reaperStop_)
                    break;
                lock.unlock();
                reapExpiredSessions();
                lock.lock();
            }
        });
    }
}

PredictionServer::PredictionServer()
    : PredictionServer(defaultLimits())
{
}

PredictionServer::~PredictionServer()
{
    if (reaper_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            reaperStop_ = true;
        }
        reaperWake_.notify_all();
        reaper_.join();
    }
    // Session destructors join their threads; clearing under no lock is
    // fine because handle() callers are gone once the owner tears the
    // server down.
    sessions_.clear();
}

bool
PredictionServer::shutdownRequested() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return shutdown_;
}

void
PredictionServer::beginDrain()
{
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
}

bool
PredictionServer::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_ || shutdown_;
}

bool
PredictionServer::drainWait(uint64_t deadline_ms)
{
    beginDrain();
    const auto deadline = std::chrono::steady_clock::now()
        + std::chrono::milliseconds(deadline_ms);
    const auto allDone = [this] {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[name, session] : sessions_) {
            if (!session->finished())
                return false;
        }
        return true;
    };
    while (!allDone()) {
        if (std::chrono::steady_clock::now() >= deadline) {
            // Deadline lapsed: force-expire the stragglers (their
            // remaining cells fail as structured records) and give the
            // aborted pipelines a moment to settle -- that wait is
            // bounded because an aborted consumer fails fast.
            std::vector<std::shared_ptr<Session>> laggards;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                for (const auto &[name, session] : sessions_) {
                    if (!session->finished())
                        laggards.push_back(session);
                }
            }
            for (const std::shared_ptr<Session> &session : laggards) {
                session->expire("session expired by drain deadline ("
                                + std::to_string(deadline_ms) + " ms)");
            }
            while (!allDone()) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
            return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return true;
}

void
PredictionServer::reapExpiredSessions()
{
    const auto now = std::chrono::steady_clock::now();
    const std::chrono::milliseconds timeout(limits_.idleTimeoutMs);
    std::vector<std::shared_ptr<Session>> stale;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[name, session] : sessions_) {
            if (session->leaseStale(now, timeout))
                stale.push_back(session);
        }
    }
    // expire() outside the server mutex: the Open-state path re-enters
    // server state (noteSessionDone) and must not deadlock.
    for (const std::shared_ptr<Session> &session : stale) {
        session->expire("session lease expired: no client op within "
                        + std::to_string(limits_.idleTimeoutMs)
                        + " ms (client vanished?)");
    }
    std::lock_guard<std::mutex> lock(mutex_);
    retireDeliveredSessions();
}

uint64_t
PredictionServer::sessionsExpired() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sessionsExpired_;
}

std::shared_ptr<PredictionServer::Session>
PredictionServer::findSession(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(name);
    return it == sessions_.end() ? nullptr : it->second;
}

void
PredictionServer::acquireRunSlot()
{
    std::unique_lock<std::mutex> lock(mutex_);
    slotFree_.wait(lock, [&] { return runningSlots_ < jobs_; });
    ++runningSlots_;
}

void
PredictionServer::releaseRunSlot()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --runningSlots_;
    }
    slotFree_.notify_one();
}

void
PredictionServer::noteSessionDone()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++sessionsDone_;
}

uint64_t
PredictionServer::failedCellsTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = retiredFailedCells_;
    for (const auto &[name, session] : sessions_)
        total += session->failedCells_.load(std::memory_order_relaxed);
    return total;
}

void
PredictionServer::retireDeliveredSessions()
{
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        if (!it->second->retirable()) {
            ++it;
            continue;
        }
        Session &session = *it->second;
        if (session.wasExpired()) {
            // Surface the reclamation: the client vanished, so nobody
            // will ever "wait" for these failures -- the stats op's
            // expired records are where an operator finds them.
            ++sessionsExpired_;
            SessionRecord rec;
            rec.session = session.name();
            rec.grid = session.gridId();
            rec.error = session.expireError();
            rec.failedCells =
                session.failedCells_.load(std::memory_order_relaxed);
            expiredRecords_.push_back(std::move(rec));
            constexpr size_t kMaxExpiredRecords = 32;
            if (expiredRecords_.size() > kMaxExpiredRecords)
                expiredRecords_.pop_front();
        }
        // The daemon's exit fate must still see this session's
        // failures after the session object is gone.
        retiredFailedCells_ += it->second->failedCells_.load(
            std::memory_order_relaxed);
        ++sessionsRetired_;
        it = sessions_.erase(it);
    }
}

std::string
PredictionServer::handleOpen(const ServeRequest &req)
{
    ScopedSpan span(SpanPhase::Accept, "serve.accept");
    span.arg("session", req.session);
    span.arg("grid", req.grid);

    const GridSpec *grid = findGrid(req.grid);
    if (!grid) {
        std::string known;
        for (const std::string &id : knownGrids())
            known += (known.empty() ? "" : ", ") + id;
        return errorReply("unknown grid '" + req.grid + "' (known: "
                          + known + ")");
    }

    std::shared_ptr<Session> session;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdown_)
            return errorReply("server is shutting down");
        if (draining_) {
            return drainingReply(
                "server is draining; not admitting new sessions");
        }
        if (auto it = sessions_.find(req.session);
            it != sessions_.end()) {
            // A reconnecting client may reuse its name immediately
            // after collecting results; only a live session blocks.
            if (!it->second->retirable()) {
                return errorReply("session '" + req.session
                                  + "' already exists");
            }
            retireDeliveredSessions();
        }
        // Admission reclaims delivered sessions lazily: a long-lived
        // daemon serving sequential clients would otherwise fill the
        // session table with finished work and refuse every open past
        // maxSessions (and its RSS would grow without bound).
        if (sessions_.size() >= limits_.maxSessions)
            retireDeliveredSessions();
        if (sessions_.size() >= limits_.maxSessions) {
            ++sessionsShed_;
            return busyReply("session limit reached ("
                                 + std::to_string(limits_.maxSessions)
                                 + "); admission refused",
                             kRetryAfterMs);
        }
        session = std::make_shared<Session>(*this, req, *grid);
        sessions_.emplace(req.session, session);
        ++sessionsOpened_;
    }

    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.key("ok");
    w.value(true);
    w.key("schema");
    w.value(kServeSchema);
    w.key("session");
    w.value(req.session);
    w.key("grid");
    w.value(grid->id);
    w.key("experiment_id");
    w.value(grid->benchId);
    w.key("title");
    w.value(grid->title);
    w.key("rows");
    w.value(static_cast<uint64_t>(session->rows()));
    w.key("benches");
    w.value(static_cast<uint64_t>(session->benches()));
    w.key("cells");
    w.value(static_cast<uint64_t>(session->cells()));
    w.endObject();
    return std::move(out).str();
}

std::string
PredictionServer::handleStart(const ServeRequest &req)
{
    const std::shared_ptr<Session> session = findSession(req.session);
    if (!session)
        return errorReply("unknown session '" + req.session + "'");
    session->touch();
    if (!session->start())
        return errorReply("session '" + req.session + "' already started");
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.key("ok");
    w.value(true);
    w.key("session");
    w.value(req.session);
    w.key("state");
    w.value("running");
    w.endObject();
    return std::move(out).str();
}

std::string
PredictionServer::handleSnapshot(const ServeRequest &req)
{
    const std::shared_ptr<Session> session = findSession(req.session);
    if (!session)
        return errorReply("unknown session '" + req.session + "'");
    session->touch();
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.key("ok");
    w.value(true);
    w.key("session");
    w.value(req.session);
    session->writeSnapshot(w);
    w.endObject();
    return std::move(out).str();
}

std::string
PredictionServer::handleWait(const ServeRequest &req)
{
    const std::shared_ptr<Session> session = findSession(req.session);
    if (!session)
        return errorReply("unknown session '" + req.session + "'");
    session->touch();
    session->awaitDone();
    if (!session->finished()) {
        return errorReply("session '" + req.session
                          + "' was never started");
    }
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.key("ok");
    w.value(true);
    w.key("session");
    w.value(req.session);
    w.key("state");
    w.value("done");
    session->writeResults(w);
    w.endObject();
    // The reply below carries the full payload: from here on the
    // session is retirable when admission needs the slot.
    session->markDelivered();
    return std::move(out).str();
}

std::string
PredictionServer::handlePing(const ServeRequest &req)
{
    const std::shared_ptr<Session> session = findSession(req.session);
    if (!session)
        return errorReply("unknown session '" + req.session + "'");
    session->touch();
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.key("ok");
    w.value(true);
    w.key("session");
    w.value(req.session);
    w.key("state");
    w.value(session->stateName());
    w.endObject();
    return std::move(out).str();
}

std::string
PredictionServer::handleStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.key("ok");
    w.value(true);
    w.key("schema");
    w.value(kServeSchema);
    w.key("sessions_opened");
    w.value(sessionsOpened_);
    w.key("sessions_done");
    w.value(sessionsDone_);
    w.key("sessions_retired");
    w.value(sessionsRetired_);
    w.key("sessions_expired");
    w.value(sessionsExpired_);
    w.key("sessions_shed");
    w.value(sessionsShed_);
    w.key("sessions_running");
    w.value(static_cast<uint64_t>(runningSlots_));
    w.key("max_sessions");
    w.value(static_cast<uint64_t>(limits_.maxSessions));
    w.key("ring_capacity");
    w.value(static_cast<uint64_t>(limits_.ringCapacity));
    w.key("blocks_per_packet");
    w.value(static_cast<uint64_t>(limits_.blocksPerPacket));
    w.key("jobs");
    w.value(uint64_t{jobs_});
    w.key("idle_timeout_ms");
    w.value(limits_.idleTimeoutMs);
    w.key("heartbeat_ms");
    w.value(limits_.heartbeatMs);
    w.key("draining");
    w.value(draining_ || shutdown_);
    w.key("expired");
    w.beginArray();
    for (const SessionRecord &rec : expiredRecords_) {
        w.beginObject();
        w.key("session");
        w.value(rec.session);
        w.key("grid");
        w.value(rec.grid);
        w.key("error");
        w.value(rec.error);
        w.key("cells_failed");
        w.value(rec.failedCells);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return std::move(out).str();
}

std::string
PredictionServer::handle(const std::string &line)
{
    // Framing hygiene, enforced even on the stdio loopback (the socket
    // paths already reject these at the transport): a request line this
    // long or carrying NUL bytes is hostile, not a protocol mistake.
    if (line.size() > serveio::kMaxRequestLine) {
        return errorReply(
            "request line exceeds "
            + std::to_string(serveio::kMaxRequestLine) + " bytes");
    }
    if (line.find('\0') != std::string::npos)
        return errorReply("request line embeds a NUL byte");

    ServeRequest req;
    try {
        req = decodeRequest(line);
    } catch (const std::exception &err) {
        return errorReply(err.what());
    }
    try {
        if (req.op == "open")
            return handleOpen(req);
        if (req.op == "start")
            return handleStart(req);
        if (req.op == "snapshot")
            return handleSnapshot(req);
        if (req.op == "wait")
            return handleWait(req);
        if (req.op == "ping")
            return handlePing(req);
        if (req.op == "stats")
            return handleStats();
        // "shutdown" (decodeRequest rejected everything else)
        {
            std::lock_guard<std::mutex> lock(mutex_);
            shutdown_ = true;
        }
        std::ostringstream out;
        JsonWriter w(out);
        w.beginObject();
        w.key("ok");
        w.value(true);
        w.key("state");
        w.value("shutdown");
        w.endObject();
        return std::move(out).str();
    } catch (const std::exception &err) {
        return errorReply(err.what());
    }
}

} // namespace ev8
