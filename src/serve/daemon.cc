#include "serve/daemon.hh"

#include <chrono>
#include <thread>

#include <unistd.h>

#include "obs/trace_span.hh"
#include "serve/protocol.hh"
#include "serve/transport.hh"
#include "sim/fault_injection.hh"

namespace ev8
{

namespace
{

/** Deterministic pause of an injected slow_peer fault. */
constexpr auto kSlowPeerPause = std::chrono::milliseconds(50);

/**
 * The fault key of a request line: "<session>/<op>", "-" standing in
 * for a session-less request. A line that does not even decode offers
 * no key; fault hooks skip it (the server's error reply covers it).
 */
bool
requestFaultKey(const std::string &line, std::string &key)
{
    try {
        const ServeRequest req = decodeRequest(line);
        key = (req.session.empty() ? std::string("-") : req.session)
            + "/" + req.op;
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace

ServeDaemon::ServeDaemon(PredictionServer &server, DaemonOptions opts)
    : server_(server), opts_(std::move(opts))
{
}

ServeDaemon::~ServeDaemon()
{
    for (const int fd : listenFds_)
        ::close(fd);
    if (!opts_.unixPath.empty())
        ::unlink(opts_.unixPath.c_str());
}

bool
ServeDaemon::listen(std::string &err)
{
    if (opts_.unixPath.empty() && opts_.tcpHost.empty()) {
        err = "no listener configured";
        return false;
    }
    if (!opts_.unixPath.empty()) {
        const int fd = serveio::listenUnix(opts_.unixPath, err);
        if (fd < 0)
            return false;
        listenFds_.push_back(fd);
    }
    if (!opts_.tcpHost.empty()) {
        const int fd = serveio::listenTcp(opts_.tcpHost, opts_.tcpPort,
                                          boundTcpPort_, err);
        if (fd < 0)
            return false;
        listenFds_.push_back(fd);
    }
    return true;
}

bool
ServeDaemon::stopRequested() const
{
    return opts_.stopFlag != nullptr && *opts_.stopFlag != 0;
}

void
ServeDaemon::serveConnection(int fd)
{
    SpanTracer::global().setThreadName("serve:conn");
    serveio::LineChannel channel(fd, serveio::kMaxRequestLine);
    FaultInjector &faults = FaultInjector::global();
    const uint64_t idleTimeoutMs = server_.limits().idleTimeoutMs;
    const uint64_t tickMs =
        opts_.pollMs > 0 ? static_cast<uint64_t>(opts_.pollMs) : 200;
    uint64_t idleMs = 0;

    std::string line;
    for (;;) {
        const serveio::LineStatus st =
            channel.readLine(line, static_cast<int>(tickMs));
        if (st == serveio::LineStatus::Timeout) {
            if (closing_.load(std::memory_order_relaxed)
                || server_.shutdownRequested())
                return;
            // One clock covers both the handshake (first request never
            // completes) and idle-between-requests cases: a connection
            // is as stale as its unfinished read.
            idleMs += tickMs;
            if (idleTimeoutMs > 0 && idleMs >= idleTimeoutMs) {
                channel.writeLine(errorReply(
                    "connection idle timeout after "
                    + std::to_string(idleTimeoutMs) + " ms"));
                return;
            }
            continue;
        }
        if (st == serveio::LineStatus::Eof
            || st == serveio::LineStatus::Error)
            return;
        if (st == serveio::LineStatus::TooLong) {
            // Terminal framing violation: answer typed, then hang up
            // (the buffered garbage makes the channel unusable).
            channel.writeLine(errorReply(
                "request line exceeds "
                + std::to_string(serveio::kMaxRequestLine) + " bytes"));
            return;
        }
        if (st == serveio::LineStatus::BadByte) {
            channel.writeLine(
                errorReply("request line embeds a NUL byte"));
            return;
        }
        idleMs = 0;

        // Consult the connection-level fault hooks before handling so
        // conn_drop means "handled, but the reply never made it" --
        // the worst case for a client (work done, ack lost).
        bool connDrop = false;
        bool slowPeer = false;
        std::string key;
        if (faults.enabled() && requestFaultKey(line, key)) {
            connDrop = faults.fires(FaultPoint::ConnDrop, key);
            slowPeer = faults.fires(FaultPoint::SlowPeer, key);
        }

        const std::string reply = server_.handle(line);

        if (connDrop)
            return; // vanish without a reply
        if (slowPeer)
            std::this_thread::sleep_for(kSlowPeerPause);
        if (!channel.writeLine(reply))
            return;
        if (server_.shutdownRequested())
            return;
    }
}

bool
ServeDaemon::run()
{
    bool ok = true;
    while (!server_.shutdownRequested() && !stopRequested()) {
        const int fd =
            serveio::acceptWithTimeout(listenFds_, opts_.pollMs);
        if (fd == -1)
            continue; // tick: re-check shutdown/stop
        if (fd == -2) {
            ok = false;
            break;
        }
        connections_.emplace_back([this, fd] { serveConnection(fd); });
    }

    // External stop -> graceful drain: admission closes first, then
    // in-flight sessions get the deadline to finish. A protocol
    // shutdown keeps its simpler contract (stop accepting, answer the
    // in-flight waits) -- the client asking for it sequences its own
    // waits before the shutdown op.
    if (stopRequested() && !server_.shutdownRequested())
        drainedClean_ = server_.drainWait(opts_.drainMs);

    // Now the connection threads: each notices closing_ within one
    // read tick once its in-flight request (if any) has been answered.
    closing_.store(true, std::memory_order_relaxed);
    for (std::thread &t : connections_)
        t.join();
    connections_.clear();
    return ok;
}

} // namespace ev8
