/**
 * @file
 * Prediction-as-a-service: the session layer behind bench_serve.
 *
 * A PredictionServer owns one SuiteRunner (so every session shares the
 * trace/stream disk cache and in-memory decode -- N sessions over the
 * same profile pay for one synthesis) and a set of named ClientSessions.
 * Each session is one predictor grid evaluated over the suite, wired as
 * a true streaming pipeline:
 *
 *     producer thread: blockStream(b) -> StreamFramer -> SpscRing
 *     consumer thread: SpscRing -> StreamAssembler -> CellExecutor
 *
 * The consumer simulates the REASSEMBLED stream, never the producer's
 * object, so the transport is on the critical path and its determinism
 * contract (packet.hh) is exercised by every served cell. Cells run
 * through the same CellExecutor core as batch grids -- fused lane
 * groups, retry/backoff, fault hooks -- which is what makes a served
 * session's cell outputs byte-identical to a batch run of the same
 * grid.
 *
 * Concurrency and isolation:
 *
 *  - admission control: at most `maxSessions` sessions may exist at
 *    once (EV8_SERVE_MAX_SESSIONS / --max-sessions); an open beyond the
 *    limit is refused with a typed busy reply carrying a retry-after
 *    hint -- it never queues. Before refusing, admission retires
 *    finished sessions whose results were already delivered to a
 *    waiter, so a long-lived daemon serving an unbounded sequence of
 *    clients keeps a bounded session table (and flat RSS --
 *    ci/check_serve_soak.py holds it to that).
 *  - session leases: with EV8_SERVE_IDLE_TIMEOUT_MS armed, every
 *    client op on a session renews its lease and a reaper thread
 *    (EV8_SERVE_HEARTBEAT_MS cadence) expires sessions no client has
 *    touched within the timeout -- the vanished client's ring, threads
 *    and admission slot are reclaimed, and the expiry is surfaced as a
 *    structured CellFailure-style record in the "stats" reply. A
 *    blocked "wait" pins the lease (the waiter IS the heartbeat).
 *  - graceful drain: beginDrain() stops admitting (typed "draining"
 *    refusal) while in-flight sessions run to completion;
 *    drainWait(deadline) bounds the wait and force-expires stragglers.
 *  - `jobs` caps sessions simulating concurrently (their producers may
 *    stream ahead into ring backpressure). Scheduling order cannot
 *    change any session's artifact -- outputs are per-session state.
 *  - a session that dies (injected session_drop faults, transport
 *    errors, an expired lease) records structured CellFailures for its
 *    own cells only; sibling sessions and the server keep running.
 *
 * The protocol front (protocol.hh) is transport-agnostic: handle() maps
 * one request line to one reply line, and bench_serve pumps those lines
 * over an AF_UNIX socket, a TCP socket or a stdio loopback. handle()
 * is thread-safe: connection threads may call it concurrently ("wait"
 * blocks only its caller).
 */

#ifndef EV8_SERVE_SERVER_HH
#define EV8_SERVE_SERVER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/grids.hh"
#include "serve/protocol.hh"
#include "sim/suite_runner.hh"

namespace ev8
{

/** Transport/admission knobs, env-resolved once per server. */
struct ServeLimits
{
    /** Max concurrently open sessions (admission control). */
    size_t maxSessions = 8;

    /** SpscRing capacity, in packets, per session. */
    size_t ringCapacity = 64;

    /** Fetch blocks per Blocks frame (packet granularity). */
    size_t blocksPerPacket = 4096;

    /**
     * Session lease duration in ms: a session no client op has touched
     * for this long is expired and reclaimed. 0 disables leases (the
     * loopback/test default -- a vanished client then pins its slot
     * forever, so any networked daemon should arm this).
     */
    uint64_t idleTimeoutMs = 0;

    /** Lease reaper cadence in ms (how promptly expiry is detected). */
    uint64_t heartbeatMs = 250;
};

class PredictionServer
{
  public:
    /**
     * Limits from the environment, strictly parsed (a set-but-invalid
     * value is stderr + exit 2, matching EV8_JOBS):
     *
     *     EV8_SERVE_MAX_SESSIONS      [1, 256]     default 8
     *     EV8_SERVE_RING_CAP          [1, 65536]   default 64
     *     EV8_SERVE_BLOCKS_PER_PACKET [1, 1048576] default 4096
     *     EV8_SERVE_IDLE_TIMEOUT_MS   [0, 3600000] default 0 (off)
     *     EV8_SERVE_HEARTBEAT_MS      [10, 60000]  default 250
     */
    static ServeLimits defaultLimits();

    /** Retry-after hint carried by admission-refused busy replies. */
    static constexpr uint64_t kRetryAfterMs = 250;

    /**
     * @param limits admission/transport knobs (see defaultLimits()).
     * @param jobs max sessions simulating concurrently; 0 picks
     *        ExperimentEngine::defaultJobs(). Artifacts do not depend
     *        on it.
     */
    explicit PredictionServer(ServeLimits limits, unsigned jobs = 0);
    PredictionServer();

    /** Joins every session thread (graceful: running sessions finish). */
    ~PredictionServer();

    PredictionServer(const PredictionServer &) = delete;
    PredictionServer &operator=(const PredictionServer &) = delete;

    /**
     * Executes one protocol request line and returns the reply line
     * (no trailing newline). Never throws: protocol and server errors
     * come back as {"ok":false,...} replies -- including overlong and
     * NUL-bearing request lines, which are rejected before parsing.
     * "wait" blocks the calling thread until the session finishes.
     */
    std::string handle(const std::string &line);

    /** Has a shutdown request been accepted? The accept loop's exit. */
    bool shutdownRequested() const;

    /**
     * Stops admitting sessions: every later open is refused with a
     * typed {"ok":false,"draining":true,...} reply. In-flight sessions
     * keep running; existing clients keep their full op surface.
     */
    void beginDrain();

    /** Has beginDrain() been called (or a shutdown been accepted)? */
    bool draining() const;

    /**
     * Blocks until every session reached Done, or @p deadline_ms
     * elapsed -- in which case the stragglers are force-expired (rings
     * aborted, remaining cells failed as structured records) and given
     * a short grace period to settle. Returns true when every session
     * finished on its own, false when any had to be force-expired.
     */
    bool drainWait(uint64_t deadline_ms);

    const ServeLimits &limits() const { return limits_; }
    unsigned jobs() const { return jobs_; }

    /** The shared suite runner (tests reach the trace cache via it). */
    SuiteRunner &runner() { return runner_; }

    /**
     * Cells that failed across every session so far (live count). The
     * daemon folds this into its exit code: any served failure makes
     * the process exit kExitPartial, mirroring the batch binaries.
     */
    uint64_t failedCellsTotal() const;

    /** Sessions the lease reaper has expired so far. */
    uint64_t sessionsExpired() const;

  private:
    class Session;

    /** One reclaimed-session record surfaced by the "stats" op. */
    struct SessionRecord
    {
        std::string session;
        std::string grid;
        std::string error;
        uint64_t failedCells = 0;
    };

    std::string handleOpen(const ServeRequest &req);
    std::string handleStart(const ServeRequest &req);
    std::string handleSnapshot(const ServeRequest &req);
    std::string handleWait(const ServeRequest &req);
    std::string handlePing(const ServeRequest &req);
    std::string handleStats();

    /** Locked lookup; null when @p name is unknown. */
    std::shared_ptr<Session> findSession(const std::string &name);

    /**
     * Erases every done-and-delivered (or done-and-expired) session,
     * folding its failure count into retiredFailedCells_ and recording
     * expired sessions for the "stats" op. Caller holds mutex_; safe
     * because a retirable session's threads touch no server state
     * (see Session::retirable()).
     */
    void retireDeliveredSessions();

    /** One lease-reaper sweep: expire stale sessions, retire done ones. */
    void reapExpiredSessions();

    /// @name Run-slot gate: at most jobs_ sessions simulate at once.
    /// @{
    void acquireRunSlot();
    void releaseRunSlot();
    /// @}

    /** Session completion tap (the "stats" op's sessions_done). */
    void noteSessionDone();

    const ServeLimits limits_;
    const unsigned jobs_;
    SuiteRunner runner_;

    mutable std::mutex mutex_; //!< guards sessions_, counters, shutdown_
    std::condition_variable slotFree_;
    std::map<std::string, std::shared_ptr<Session>> sessions_;
    size_t runningSlots_ = 0;
    bool shutdown_ = false;
    bool draining_ = false;

    // Lease reaper (started only when idleTimeoutMs > 0).
    std::thread reaper_;
    std::condition_variable reaperWake_; //!< waits on mutex_
    bool reaperStop_ = false;

    // Lifetime counters for the "stats" op.
    uint64_t sessionsOpened_ = 0;
    uint64_t sessionsDone_ = 0;
    uint64_t sessionsRetired_ = 0;
    uint64_t sessionsExpired_ = 0;
    uint64_t sessionsShed_ = 0;

    /** Most recent expired-session records (bounded; stats surfaces). */
    std::deque<SessionRecord> expiredRecords_;

    // Failures carried by sessions that have since been retired; the
    // daemon's exit fate (failedCellsTotal) must not forget them.
    uint64_t retiredFailedCells_ = 0;
};

} // namespace ev8

#endif // EV8_SERVE_SERVER_HH
