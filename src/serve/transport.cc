#include "serve/transport.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ev8
{
namespace serveio
{

namespace
{

/** Resolves @p host to an IPv4 address. False + @p err on failure. */
bool
resolveIpv4(const std::string &host, in_addr &out, std::string &err)
{
    if (::inet_pton(AF_INET, host.c_str(), &out) == 1)
        return true;
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
    if (rc != 0 || !res) {
        err = "cannot resolve host '" + host + "': "
            + (rc != 0 ? ::gai_strerror(rc) : "no address");
        if (res)
            ::freeaddrinfo(res);
        return false;
    }
    out = reinterpret_cast<const sockaddr_in *>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
    return true;
}

} // namespace

int
listenUnix(const std::string &path, std::string &err)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        err = "socket path too long: " + path;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        err = "bind " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        err = "listen " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

int
listenTcp(const std::string &host, uint16_t port, uint16_t &bound_port,
          std::string &err)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (!resolveIpv4(host, addr.sin_addr, err))
        return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        err = "bind " + host + ":" + std::to_string(port) + ": "
            + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        err = "listen " + host + ":" + std::to_string(port) + ": "
            + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len)
        != 0) {
        err = std::string("getsockname: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    bound_port = ntohs(bound.sin_port);
    return fd;
}

int
connectUnix(const std::string &path, std::string &err)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        err = "socket path too long: " + path;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = "connect " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectTcp(const std::string &host, uint16_t port, std::string &err)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (!resolveIpv4(host, addr.sin_addr, err))
        return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    // The protocol is strict request/reply lines; Nagle only adds
    // latency to the small request frames.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = "connect " + host + ":" + std::to_string(port) + ": "
            + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
parseHostPort(const std::string &spec, std::string &host, uint16_t &port,
              std::string &err)
{
    const size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0
        || colon + 1 == spec.size()) {
        err = "expected host:port, got '" + spec + "'";
        return false;
    }
    host = spec.substr(0, colon);
    const std::string digits = spec.substr(colon + 1);
    uint64_t value = 0;
    for (const char ch : digits) {
        if (ch < '0' || ch > '9') {
            err = "malformed port in '" + spec + "'";
            return false;
        }
        value = value * 10 + static_cast<uint64_t>(ch - '0');
        if (value > 65535) {
            err = "port out of range in '" + spec + "'";
            return false;
        }
    }
    port = static_cast<uint16_t>(value);
    return true;
}

int
acceptWithTimeout(const std::vector<int> &listen_fds, int timeout_ms)
{
    std::vector<pollfd> fds;
    fds.reserve(listen_fds.size());
    for (const int fd : listen_fds) {
        pollfd p{};
        p.fd = fd;
        p.events = POLLIN;
        fds.push_back(p);
    }
    const int r =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (r == 0)
        return -1;
    if (r < 0)
        return errno == EINTR ? -1 : -2;
    for (const pollfd &p : fds) {
        if (!(p.revents & POLLIN))
            continue;
        const int fd = ::accept(p.fd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        // A raced-away connection is a timeout-shaped non-event; only
        // a structurally broken listener is a hard error.
        return errno == ECONNABORTED || errno == EINTR ? -1 : -2;
    }
    return -1;
}

int
acceptWithTimeout(int listen_fd, int timeout_ms)
{
    return acceptWithTimeout(std::vector<int>{listen_fd}, timeout_ms);
}

const char *
lineStatusName(LineStatus status)
{
    switch (status) {
      case LineStatus::Ok:
        return "ok";
      case LineStatus::Eof:
        return "eof";
      case LineStatus::Timeout:
        return "timeout";
      case LineStatus::TooLong:
        return "too_long";
      case LineStatus::BadByte:
        return "bad_byte";
      case LineStatus::Error:
        return "error";
    }
    return "?";
}

LineChannel::~LineChannel()
{
    if (fd_ >= 0)
        ::close(fd_);
}

LineStatus
LineChannel::scanBuffer(std::string &line, size_t from)
{
    // NUL bytes never appear in a JSON line; one in the stream means a
    // corrupted or hostile peer, and passing it onward would let it
    // truncate C-string handling downstream. Reject before splitting.
    const size_t nul = buf_.find('\0', from);
    const size_t nl = buf_.find('\n', from);
    if (nul != std::string::npos
        && (nl == std::string::npos || nul < nl))
        return LineStatus::BadByte;
    if (nl != std::string::npos) {
        if (nl > maxLine_)
            return LineStatus::TooLong;
        line.assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        return LineStatus::Ok;
    }
    if (buf_.size() > maxLine_)
        return LineStatus::TooLong;
    return LineStatus::Timeout; // incomplete: caller decides to wait
}

LineStatus
LineChannel::readLine(std::string &line, int timeout_ms)
{
    // Violations poison the channel: the buffer is left as-is, so the
    // caller sees the same answer until it closes the connection.
    LineStatus st = scanBuffer(line, 0);
    if (st != LineStatus::Timeout)
        return st;

    for (;;) {
        pollfd p{};
        p.fd = fd_;
        p.events = POLLIN;
        const int r = ::poll(&p, 1, timeout_ms);
        if (r == 0)
            return LineStatus::Timeout;
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return LineStatus::Error;
        }
        char chunk[4096];
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n == 0)
            return buf_.empty() ? LineStatus::Eof : LineStatus::Error;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return LineStatus::Error;
        }
        const size_t scanned = buf_.size();
        buf_.append(chunk, static_cast<size_t>(n));
        st = scanBuffer(line, scanned);
        if (st != LineStatus::Timeout)
            return st;
    }
}

bool
LineChannel::writeLine(const std::string &line)
{
    std::string framed = line;
    framed.push_back('\n');
    size_t at = 0;
    while (at < framed.size()) {
        const ssize_t n = ::send(fd_, framed.data() + at,
                                 framed.size() - at, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        at += static_cast<size_t>(n);
    }
    return true;
}

void
LineChannel::writePartialAndShutdown(const std::string &line,
                                     size_t bytes)
{
    const size_t cut = bytes < line.size() ? bytes : line.size();
    size_t at = 0;
    while (at < cut) {
        const ssize_t n =
            ::send(fd_, line.data() + at, cut - at, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        at += static_cast<size_t>(n);
    }
    ::shutdown(fd_, SHUT_RDWR);
}

} // namespace serveio
} // namespace ev8
