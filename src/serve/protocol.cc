#include "serve/protocol.hh"

#include <sstream>
#include <stdexcept>

namespace ev8
{

namespace
{

/** Member as bool; @p fallback when absent. Throws on a non-bool. */
bool
boolOr(const JsonValue &obj, const std::string &name, bool fallback)
{
    const JsonValue *v = obj.find(name);
    if (!v)
        return fallback;
    if (v->kind != JsonValue::Kind::Bool)
        throw std::runtime_error("field '" + name + "' must be a bool");
    return v->boolean;
}

/** Member as string; throws when absent or not a string. */
std::string
stringField(const JsonValue &obj, const std::string &name)
{
    const JsonValue *v = obj.find(name);
    if (!v || !v->isString())
        throw std::runtime_error("missing string field '" + name + "'");
    return v->text;
}

/** Parses a non-negative u64 serialized as a decimal string. */
uint64_t
u64Field(const JsonValue &v, const std::string &what)
{
    if (!v.isString())
        throw std::runtime_error(what + " must be a decimal string");
    try {
        size_t used = 0;
        const uint64_t value = std::stoull(v.text, &used, 10);
        if (used != v.text.size() || v.text.empty())
            throw std::invalid_argument(v.text);
        return value;
    } catch (const std::exception &) {
        throw std::runtime_error("malformed u64 in " + what + ": '"
                                 + v.text + "'");
    }
}

} // namespace

std::string
encodeRequest(const ServeRequest &req)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.key("op");
    w.value(req.op);
    if (!req.session.empty()) {
        w.key("session");
        w.value(req.session);
    }
    if (req.op == "open") {
        w.key("grid");
        w.value(req.grid);
        w.key("events");
        w.value(req.wantEvents);
        w.key("metrics");
        w.value(req.wantMetrics);
        w.key("timing");
        w.value(req.timing);
        w.key("generic");
        w.value(req.forceGeneric);
    }
    w.endObject();
    return std::move(out).str();
}

ServeRequest
decodeRequest(const std::string &line)
{
    const JsonValue doc = parseJson(line);
    if (!doc.isObject())
        throw std::runtime_error("request is not a JSON object");

    ServeRequest req;
    req.op = stringField(doc, "op");
    if (req.op == "open") {
        req.session = stringField(doc, "session");
        req.grid = stringField(doc, "grid");
        req.wantEvents = boolOr(doc, "events", false);
        req.wantMetrics = boolOr(doc, "metrics", true);
        req.timing = boolOr(doc, "timing", true);
        req.forceGeneric = boolOr(doc, "generic", false);
    } else if (req.op == "start" || req.op == "snapshot"
               || req.op == "wait" || req.op == "ping") {
        req.session = stringField(doc, "session");
    } else if (req.op != "stats" && req.op != "shutdown") {
        throw std::runtime_error("unknown op '" + req.op + "'");
    }
    return req;
}

std::string
errorReply(const std::string &message)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.key("ok");
    w.value(false);
    w.key("error");
    w.value(message);
    w.endObject();
    return std::move(out).str();
}

std::string
busyReply(const std::string &message, uint64_t retry_after_ms)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.key("ok");
    w.value(false);
    w.key("busy");
    w.value(true);
    w.key("retry_after_ms");
    w.value(retry_after_ms);
    w.key("error");
    w.value(message);
    w.endObject();
    return std::move(out).str();
}

std::string
drainingReply(const std::string &message)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.key("ok");
    w.value(false);
    w.key("draining");
    w.value(true);
    w.key("error");
    w.value(message);
    w.endObject();
    return std::move(out).str();
}

void
writeFailure(JsonWriter &w, const CellFailure &f)
{
    w.beginObject();
    w.key("row");
    w.value(std::to_string(f.row));
    w.key("row_label");
    w.value(f.rowLabel);
    w.key("bench");
    w.value(f.bench);
    w.key("attempts");
    w.value(std::to_string(f.attempts));
    w.key("error");
    w.value(f.error);
    w.key("attempt_ns");
    w.beginArray();
    for (const uint64_t ns : f.attemptNs)
        w.value(std::to_string(ns));
    w.endArray();
    w.endObject();
}

CellFailure
readFailure(const JsonValue &v)
{
    if (!v.isObject())
        throw std::runtime_error("failure record is not an object");
    CellFailure f;
    f.row = static_cast<size_t>(u64Field(v.at("row"), "row"));
    f.rowLabel = stringField(v, "row_label");
    f.bench = stringField(v, "bench");
    f.attempts = static_cast<unsigned>(
        u64Field(v.at("attempts"), "attempts"));
    f.error = stringField(v, "error");
    const JsonValue &ns = v.at("attempt_ns");
    if (!ns.isArray())
        throw std::runtime_error("attempt_ns must be an array");
    for (const JsonValue &item : ns.items)
        f.attemptNs.push_back(u64Field(item, "attempt_ns"));
    return f;
}

} // namespace ev8
