/**
 * @file
 * Named experiment grids: the shared vocabulary between the batch
 * figure binaries and the serve protocol.
 *
 * A served client opens a session by grid *name* ("fig5"), not by
 * shipping predictor constructors over the wire. For the served
 * artifacts to be byte-identical to the batch binary's, both sides must
 * agree on everything that feeds the export rows: the row labels, the
 * row order, the predictor specs (hence storage bits) and the base
 * SimConfig preset. This registry is that agreement -- the batch binary
 * (bench_fig5_schemes) builds its rows from the same GridSpec the
 * server resolves a session's grid name against.
 *
 * Rows reference predictors by factory spec string (makePredictor), so
 * the registry stays a data table and the predictor zoo keeps one
 * constructor surface.
 */

#ifndef EV8_SERVE_GRIDS_HH
#define EV8_SERVE_GRIDS_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sim/suite_runner.hh"

namespace ev8
{

/** One labelled row of a named grid. */
struct GridRowSpec
{
    std::string label; //!< export/report label, identical batch & served
    std::string spec;  //!< makePredictor() spec string

    /**
     * Direct factory for rows the spec grammar cannot express (the EV8
     * hardware predictor, non-default update policies). When set it
     * wins over @ref spec; the factory must be a pure function so the
     * batch binary and the server build identical predictors.
     */
    PredictorFactory make;

    /**
     * Per-row SimConfig preset override ("ghist", "ev8", or one of
     * the fig7 ladder presets "lghist-nopath" / "lghist-path" /
     * "lghist-3old"); empty means the grid's preset. Lets one grid
     * ablate across information vectors (the update-policy grid runs
     * EV8 rows under the EV8 vector and the unconstrained rows under
     * ideal ghist; the fig7 grid walks the whole ladder).
     */
    std::string preset;
};

/** One named grid: an id, its banner identity, and its rows in order. */
struct GridSpec
{
    std::string id;      //!< wire / --grid name ("fig5")
    std::string benchId; //!< experiment id for the banner ("Fig. 5")
    std::string title;   //!< experiment title for the banner
    std::vector<GridRowSpec> rows;

    /**
     * SimConfig preset name: "ghist" (SimConfig::ghist()), "ev8"
     * (SimConfig::ev8()), or an information-vector ladder point
     * ("lghist-nopath" / "lghist-path" / "lghist-3old").
     * baseConfig() resolves it.
     */
    std::string preset;
};

/** The registry. @returns null for an unknown id. */
const GridSpec *findGrid(const std::string &id);

/** Registered grid ids, for --help / error messages. */
std::vector<std::string> knownGrids();

/** Resolves @p grid's preset to an uninstrumented SimConfig. */
SimConfig baseConfig(const GridSpec &grid);

/**
 * Resolves @p row's effective preset (its own, else the grid's) to an
 * uninstrumented SimConfig -- the per-row analogue of baseConfig(),
 * used by registry-driven batch binaries.
 */
SimConfig rowBaseConfig(const GridSpec &grid, const GridRowSpec &row);

/** @p row's predictor: the direct factory when set, else the spec. */
PredictorPtr makeRowPredictor(const GridRowSpec &row);

/**
 * Materializes @p grid's rows as engine GridRows over @p config (the
 * instrumented per-caller config -- batch and served callers attach
 * different sinks but identical simulation fields). Rows with a preset
 * override keep @p config's observability hooks but take their own
 * preset's simulation fields.
 */
std::vector<GridRow> buildGridRows(const GridSpec &grid,
                                   const SimConfig &config);

/** Storage bits of each row's predictor, in row order. */
std::vector<uint64_t> gridStorageBits(const GridSpec &grid);

} // namespace ev8

#endif // EV8_SERVE_GRIDS_HH
