/**
 * @file
 * The serve connection transport: AF_UNIX and TCP stream sockets plus
 * the bounded line framing both ends of the ev8-serve-v1 protocol pump
 * (serve/protocol.hh -- one JSON object per newline-terminated line).
 *
 * The daemon listens on either transport (or both at once); the wire
 * bytes are identical, so a served artifact cannot depend on which one
 * carried it. Everything here is written for a hostile network:
 *
 *  - line framing is BOUNDED: a peer that streams bytes without ever
 *    sending a newline hits the per-channel line limit and gets a
 *    typed LineStatus::TooLong instead of growing the daemon's heap;
 *  - embedded NUL bytes inside a line are rejected at the framing
 *    layer (LineStatus::BadByte) before any parser sees them;
 *  - reads take a poll() deadline, so handshake/idle timeouts and
 *    client-side --timeout deadlines are enforced at the seam where a
 *    vanished or glacial peer actually manifests;
 *  - short writes are retried; a closed peer surfaces as a clean
 *    false/Error, never SIGPIPE (send with MSG_NOSIGNAL).
 *
 * Nothing in this header owns protocol semantics: garbage bytes in a
 * line are still delivered (minus the framing violations above) so the
 * server can answer with a typed error reply -- a malformed frame must
 * produce a clean session failure, never a crash or a wedged sibling.
 */

#ifndef EV8_SERVE_TRANSPORT_HH
#define EV8_SERVE_TRANSPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ev8
{
namespace serveio
{

/** Default request-line bound (daemon side): 1 MiB. */
inline constexpr size_t kMaxRequestLine = 1u << 20;

/**
 * Default reply-line bound (client side). Wait replies carry the full
 * per-cell payload and are legitimately large; this is an OOM guard,
 * not a protocol limit.
 */
inline constexpr size_t kMaxReplyLine = size_t{1} << 30;

/** Binds + listens on AF_UNIX @p path (unlinked first). -1 + @p err. */
int listenUnix(const std::string &path, std::string &err);

/**
 * Binds + listens on TCP @p host : @p port (IPv4 dotted quad or a name
 * resolving to one). @p port 0 picks an ephemeral port; the bound port
 * is returned through @p bound_port either way. -1 + @p err on failure.
 */
int listenTcp(const std::string &host, uint16_t port,
              uint16_t &bound_port, std::string &err);

/** Connects to AF_UNIX @p path. -1 + @p err on failure. */
int connectUnix(const std::string &path, std::string &err);

/** Connects to TCP @p host : @p port. -1 + @p err on failure. */
int connectTcp(const std::string &host, uint16_t port, std::string &err);

/**
 * Splits "host:port" (e.g. "127.0.0.1:7517"). Returns false (with
 * @p err set) on a missing/garbage port or empty host; port 0 is
 * accepted (ephemeral bind).
 */
bool parseHostPort(const std::string &spec, std::string &host,
                   uint16_t &port, std::string &err);

/**
 * Waits for a connection on any of @p listen_fds, polling so the
 * caller can re-check its shutdown flag. Returns the accepted
 * connection fd, -1 on poll timeout or EINTR, -2 on a hard error.
 */
int acceptWithTimeout(const std::vector<int> &listen_fds, int timeout_ms);

/** Single-listener convenience overload. */
int acceptWithTimeout(int listen_fd, int timeout_ms);

/** What one bounded, deadlined readLine() attempt produced. */
enum class LineStatus
{
    Ok,      //!< a complete line is in the out-parameter
    Eof,     //!< orderly close, no buffered partial line pending
    Timeout, //!< the poll deadline expired before a newline arrived
    TooLong, //!< the peer exceeded the line bound without a newline
    BadByte, //!< the line embeds a NUL byte
    Error,   //!< hard read error (connection reset, bad fd)
};

/** The human spelling of @p status ("ok", "eof", "too_long", ...). */
const char *lineStatusName(LineStatus status);

/**
 * Buffered line reader/writer over one stream socket. Owns the fd.
 * One reader and one writer thread at most (the protocol is strictly
 * request/reply, so in practice it is one thread).
 */
class LineChannel
{
  public:
    /**
     * @param fd connected stream socket; the channel closes it.
     * @param max_line line bound in bytes, newline excluded
     *        (kMaxRequestLine for a daemon, kMaxReplyLine for a
     *        client).
     */
    explicit LineChannel(int fd, size_t max_line = kMaxRequestLine)
        : fd_(fd), maxLine_(max_line)
    {
    }

    ~LineChannel();

    LineChannel(const LineChannel &) = delete;
    LineChannel &operator=(const LineChannel &) = delete;

    /**
     * Reads one '\n'-terminated line (without the '\n') into @p line.
     * Blocks at most @p timeout_ms (-1 = forever). On TooLong/BadByte
     * the connection is poisoned: the offending bytes stay buffered
     * and every later read reports the same violation, so the caller
     * must reply and close. On Timeout the partial line stays buffered
     * and the next call resumes it.
     */
    LineStatus readLine(std::string &line, int timeout_ms = -1);

    /**
     * Writes @p line plus '\n', retrying short writes. False when the
     * peer is gone (EPIPE/reset) -- never raises SIGPIPE.
     */
    bool writeLine(const std::string &line);

    /**
     * Writes the first @p bytes bytes of @p line (no newline) and then
     * shuts the socket down -- a torn frame, for fault injection and
     * tests only.
     */
    void writePartialAndShutdown(const std::string &line, size_t bytes);

    int fd() const { return fd_; }

  private:
    /** Scans buf_[from..) for framing violations / a complete line. */
    LineStatus scanBuffer(std::string &line, size_t from);

    int fd_;
    const size_t maxLine_;
    std::string buf_;
};

} // namespace serveio
} // namespace ev8

#endif // EV8_SERVE_TRANSPORT_HH
