#include "serve/grids.hh"

#include <algorithm>
#include <stdexcept>

#include "core/ev8_predictor.hh"
#include "predictors/egskew.hh"
#include "predictors/factory.hh"
#include "predictors/twobcgskew.hh"

namespace ev8
{

namespace
{

SimConfig
presetConfig(const std::string &preset)
{
    if (preset == "ghist")
        return SimConfig::ghist();
    if (preset == "ev8")
        return SimConfig::ev8();
    // The fig7 information-vector ladder between those two endpoints.
    if (preset == "lghist-nopath")
        return SimConfig{HistoryMode::LghistNoPath, 0, false};
    if (preset == "lghist-path")
        return SimConfig{HistoryMode::LghistPath, 0, false};
    if (preset == "lghist-3old")
        return SimConfig{HistoryMode::LghistPath, 3, false};
    throw std::invalid_argument("unknown SimConfig preset: " + preset);
}

/**
 * The fig6 sweep rows for one scheme: the candidate history lengths
 * plus the scheme's log2(size) point when the sweep does not already
 * contain it -- the same point set (and order) bench_fig6_history_length
 * walks, served as one labelled row per point.
 */
void
appendSweepRows(std::vector<GridRowSpec> &rows, const std::string &label,
                unsigned log2_size,
                const std::function<std::string(unsigned)> &spec)
{
    std::vector<unsigned> lengths{8, 12, 16, 20, 24, 28};
    if (std::find(lengths.begin(), lengths.end(), log2_size)
        == lengths.end())
        lengths.push_back(log2_size);
    for (unsigned len : lengths) {
        rows.push_back({label + " L=" + std::to_string(len), spec(len),
                        nullptr, ""});
    }
}

/** The fig6 2Bc-gskew length scaling (G0 ~ 0.62 L, Meta ~ 0.74 L). */
std::string
gskewSweepSpec(unsigned log2_entries, unsigned len)
{
    const unsigned g0 = std::max(2u, len * 62 / 100);
    const unsigned meta = std::max(2u, len * 74 / 100);
    return "2bcgskew:" + std::to_string(log2_entries) + ":0:"
        + std::to_string(g0) + ":" + std::to_string(meta) + ":"
        + std::to_string(len);
}

std::vector<GridRowSpec>
fig6Rows()
{
    std::vector<GridRowSpec> rows;
    appendSweepRows(rows, "2Bc-gskew 256Kb", 15, [](unsigned len) {
        return gskewSweepSpec(15, len);
    });
    appendSweepRows(rows, "2Bc-gskew 512Kb", 16, [](unsigned len) {
        return gskewSweepSpec(16, len);
    });
    appendSweepRows(rows, "gshare 2Mb", 20, [](unsigned len) {
        return "gshare:20:" + std::to_string(len);
    });
    appendSweepRows(rows, "YAGS 288Kb", 14, [](unsigned len) {
        return "yags:14:14:" + std::to_string(len);
    });
    appendSweepRows(rows, "bi-mode 544Kb", 17, [](unsigned len) {
        return "bimode:17:14:" + std::to_string(len);
    });
    return rows;
}

/**
 * One fig7 4*64K 2Bc-gskew (Section 8.3 information-vector study).
 * Mirrors bench_fig7_info_vector: history lengths in the
 * lghist-optimal range, path info only for the full EV8 vector row.
 */
PredictorFactory
fig7Gskew64K(bool use_path, const char *label)
{
    return [use_path, label] {
        TwoBcGskewConfig cfg =
            TwoBcGskewConfig::symmetric(16, 0, 13, 15, 21, label);
        cfg.usePathInfo = use_path;
        return std::make_unique<TwoBcGskewPredictor>(cfg);
    };
}

/**
 * The Fig. 7 information-vector ladder: same predictor, five history
 * vectors from conventional ghist to the full EV8 vector. Each row
 * carries its own preset -- the row axis *is* the SimConfig.
 */
std::vector<GridRowSpec>
fig7Rows()
{
    return {
        {"ghist (conventional)", "", fig7Gskew64K(false, "ghist"),
         "ghist"},
        {"lghist, no path", "", fig7Gskew64K(false, "lghist-nopath"),
         "lghist-nopath"},
        {"lghist + path", "", fig7Gskew64K(false, "lghist-path"),
         "lghist-path"},
        {"3-old lghist", "", fig7Gskew64K(false, "lghist-3old"),
         "lghist-3old"},
        {"EV8 info vector", "", fig7Gskew64K(true, "ev8-vector"), "ev8"},
    };
}

/**
 * One fig8 table-size point (Section 8.4). Mirrors
 * bench_fig8_table_sizes: base 512Kb 2Bc-gskew under the EV8 vector,
 * optionally shrunk BIM and halved G0/Meta hysteresis.
 */
PredictorFactory
fig8ConfigOf(unsigned log2_bim, bool half_hysteresis, const char *label)
{
    return [log2_bim, half_hysteresis, label] {
        TwoBcGskewConfig cfg =
            TwoBcGskewConfig::symmetric(16, 4, 13, 15, 21, label);
        cfg.usePathInfo = true; // the EV8 information vector
        cfg.tables[BIM].log2Pred = log2_bim;
        cfg.tables[BIM].log2Hyst = log2_bim;
        if (half_hysteresis) {
            cfg.tables[G0].log2Hyst = 15;
            cfg.tables[META].log2Hyst = 15;
        }
        return std::make_unique<TwoBcGskewPredictor>(cfg);
    };
}

/** The Fig. 8 table-size walk down to the 352Kb hardware budget. */
std::vector<GridRowSpec>
fig8Rows()
{
    return {
        {"4*64K base (512Kb)", "", fig8ConfigOf(16, false, "base-512Kb"),
         ""},
        {"small BIM (16K)", "", fig8ConfigOf(14, false, "small-BIM"),
         ""},
        {"EV8 size (352Kb)", "", fig8ConfigOf(14, true, "EV8-size"), ""},
    };
}

/**
 * The Section 4.2 update-policy ablation. The EV8 and non-default
 * policy rows use direct factories (the spec grammar has no
 * partial/total switch); the factories reproduce the historical
 * bench_ablation_update_policy predictors -- labels included, since
 * the labels prefix the exported metric names.
 */
std::vector<GridRowSpec>
updatePolicyRows()
{
    return {
        {"EV8, partial update", "",
         [] { return std::make_unique<Ev8Predictor>(); }, "ev8"},
        {"EV8, total update", "",
         [] {
             Ev8Config cfg;
             cfg.partialUpdate = false;
             cfg.label = "EV8-total";
             return std::make_unique<Ev8Predictor>(cfg);
         },
         "ev8"},
        {"2Bc-gskew 512Kb, partial", "",
         [] {
             return std::make_unique<TwoBcGskewPredictor>(
                 TwoBcGskewConfig::symmetric(16, 0, 13, 15, 21,
                                             "gskew-partial"));
         },
         "ghist"},
        {"2Bc-gskew 512Kb, total", "",
         [] {
             auto cfg = TwoBcGskewConfig::symmetric(16, 0, 13, 15, 21,
                                                    "gskew-total");
             cfg.partialUpdate = false;
             return std::make_unique<TwoBcGskewPredictor>(cfg);
         },
         "ghist"},
        {"e-gskew 3*64K, partial", "",
         [] { return std::make_unique<EgskewPredictor>(16, 15, true); },
         "ghist"},
        {"e-gskew 3*64K, total", "",
         [] { return std::make_unique<EgskewPredictor>(16, 15, false); },
         "ghist"},
    };
}

/**
 * The Section 6 banking ablation as a predictor grid: the banked EV8
 * hardware arrays under the real EV8 information vector, against the
 * same-size unconstrained 2Bc-gskew under the same vector (isolating
 * the array constraints) and under ideal ghist (the full
 * idealization).
 */
std::vector<GridRowSpec>
bankingRows()
{
    return {
        {"EV8 4x16K banked, lghist+path", "",
         [] { return std::make_unique<Ev8Predictor>(); }, "ev8"},
        {"2Bc-gskew EV8-size, lghist+path", "ev8size", nullptr, "ev8"},
        {"2Bc-gskew EV8-size, ideal ghist", "ev8size", nullptr, "ghist"},
    };
}

/**
 * Row labels and order are load-bearing: they must match the batch
 * binaries byte for byte (export rows, CellFailure row_label, the
 * checkpoint grid hash all carry them).
 */
const std::vector<GridSpec> &
registry()
{
    static const std::vector<GridSpec> grids = {
        {"fig5", "Fig. 5",
         "Branch prediction accuracy for various global history schemes",
         {
             {"2Bc-gskew 4*32K (256Kb)", "fig5-2bcgskew256", nullptr, ""},
             {"2Bc-gskew 4*64K (512Kb)", "fig5-2bcgskew512", nullptr, ""},
             {"bi-mode 2x128K+16K (544Kb)", "fig5-bimode544", nullptr,
              ""},
             {"gshare 1M (2Mb)", "fig5-gshare2M", nullptr, ""},
             {"YAGS 288Kb", "fig5-yags288", nullptr, ""},
             {"YAGS 576Kb", "fig5-yags576", nullptr, ""},
         },
         "ghist"},
        {"fig6", "Fig. 6 (grid)",
         "History length sweep points behind the fig6 best-vs-log2 "
         "comparison",
         fig6Rows(), "ghist"},
        {"fig7", "Fig. 7",
         "Impact of the information vector on branch prediction "
         "accuracy (4*64K 2Bc-gskew)",
         fig7Rows(), "ghist"},
        {"fig8", "Fig. 8",
         "Adjusting table sizes in the predictor", fig8Rows(), "ev8"},
        {"ablation-update-policy", "Ablation (Section 4.2)",
         "Partial vs. total update policy", updatePolicyRows(), "ghist"},
        {"ablation-banking", "Ablation (Section 6, grid)",
         "Banked EV8 arrays vs. unconstrained tables", bankingRows(),
         "ev8"},
    };
    return grids;
}

} // namespace

const GridSpec *
findGrid(const std::string &id)
{
    for (const GridSpec &g : registry())
        if (g.id == id)
            return &g;
    return nullptr;
}

std::vector<std::string>
knownGrids()
{
    std::vector<std::string> ids;
    for (const GridSpec &g : registry())
        ids.push_back(g.id);
    return ids;
}

SimConfig
baseConfig(const GridSpec &grid)
{
    return presetConfig(grid.preset);
}

SimConfig
rowBaseConfig(const GridSpec &grid, const GridRowSpec &row)
{
    return presetConfig(row.preset.empty() ? grid.preset : row.preset);
}

PredictorPtr
makeRowPredictor(const GridRowSpec &row)
{
    return row.make ? row.make() : makePredictor(row.spec);
}

std::vector<GridRow>
buildGridRows(const GridSpec &grid, const SimConfig &config)
{
    std::vector<GridRow> rows;
    rows.reserve(grid.rows.size());
    for (const GridRowSpec &r : grid.rows) {
        SimConfig rowConfig = rowBaseConfig(grid, r);
        rowConfig.metrics = config.metrics;
        rowConfig.events = config.events;
        rowConfig.profileTiming = config.profileTiming;
        rowConfig.forceGenericKernel = config.forceGenericKernel;
        rows.push_back(GridRow{
            [make = r.make, spec = r.spec] {
                return make ? make() : makePredictor(spec);
            },
            rowConfig,
            r.label,
        });
    }
    return rows;
}

std::vector<uint64_t>
gridStorageBits(const GridSpec &grid)
{
    std::vector<uint64_t> bits;
    bits.reserve(grid.rows.size());
    for (const GridRowSpec &r : grid.rows)
        bits.push_back(makeRowPredictor(r)->storageBits());
    return bits;
}

} // namespace ev8
