#include "serve/grids.hh"

#include <stdexcept>

#include "predictors/factory.hh"

namespace ev8
{

namespace
{

/**
 * Row labels and order are load-bearing: they must match the batch
 * binaries byte for byte (export rows, CellFailure row_label, the
 * checkpoint grid hash all carry them).
 */
const std::vector<GridSpec> &
registry()
{
    static const std::vector<GridSpec> grids = {
        {"fig5", "Fig. 5",
         "Branch prediction accuracy for various global history schemes",
         {
             {"2Bc-gskew 4*32K (256Kb)", "fig5-2bcgskew256"},
             {"2Bc-gskew 4*64K (512Kb)", "fig5-2bcgskew512"},
             {"bi-mode 2x128K+16K (544Kb)", "fig5-bimode544"},
             {"gshare 1M (2Mb)", "fig5-gshare2M"},
             {"YAGS 288Kb", "fig5-yags288"},
             {"YAGS 576Kb", "fig5-yags576"},
         },
         "ghist"},
    };
    return grids;
}

} // namespace

const GridSpec *
findGrid(const std::string &id)
{
    for (const GridSpec &g : registry())
        if (g.id == id)
            return &g;
    return nullptr;
}

std::vector<std::string>
knownGrids()
{
    std::vector<std::string> ids;
    for (const GridSpec &g : registry())
        ids.push_back(g.id);
    return ids;
}

SimConfig
baseConfig(const GridSpec &grid)
{
    if (grid.preset == "ghist")
        return SimConfig::ghist();
    if (grid.preset == "ev8")
        return SimConfig::ev8();
    throw std::invalid_argument("unknown SimConfig preset: "
                                + grid.preset);
}

std::vector<GridRow>
buildGridRows(const GridSpec &grid, const SimConfig &config)
{
    std::vector<GridRow> rows;
    rows.reserve(grid.rows.size());
    for (const GridRowSpec &r : grid.rows) {
        rows.push_back(GridRow{
            [spec = r.spec] { return makePredictor(spec); },
            config,
            r.label,
        });
    }
    return rows;
}

std::vector<uint64_t>
gridStorageBits(const GridSpec &grid)
{
    std::vector<uint64_t> bits;
    bits.reserve(grid.rows.size());
    for (const GridRowSpec &r : grid.rows)
        bits.push_back(makePredictor(r.spec)->storageBits());
    return bits;
}

} // namespace ev8
