/**
 * @file
 * The serve accept loop: listeners, connection threads, and the
 * network-facing failure semantics that PredictionServer::handle()
 * (pure request -> reply) deliberately knows nothing about.
 *
 * A ServeDaemon binds an AF_UNIX listener, a TCP listener, or both at
 * once over one PredictionServer, then accepts connections until a
 * client sends {"op":"shutdown"} or the embedding process requests a
 * stop (bench_serve points stopFlag at its SIGTERM/SIGINT flag). Each
 * connection gets its own thread pumping request lines to replies.
 *
 * Hostile-peer behavior, per connection:
 *
 *  - framing violations are terminal: an overlong request line or one
 *    embedding NUL gets a typed {"ok":false,...} reply and the
 *    connection is closed. The violating client's sessions are NOT
 *    touched -- if it reconnects before its lease lapses it can still
 *    wait on them.
 *  - reads tick every ~200 ms, so a vanished peer cannot wedge its
 *    thread: with EV8_SERVE_IDLE_TIMEOUT_MS armed, a connection idle
 *    for that long (including one that never completes the first
 *    request -- the handshake timeout) is closed; the session lease
 *    reaper then reclaims whatever the client abandoned.
 *  - a stop request drains: the server stops admitting sessions
 *    (typed "draining" refusals), in-flight sessions finish inside the
 *    drain deadline (stragglers are force-expired past it), and every
 *    connection thread is joined before run() returns.
 *
 * Fault injection (EV8_FAULT_SPEC, keys "<session>/<op>" with "-" for
 * a session-less request): conn_drop closes the connection after the
 * request is handled but before the reply is written -- the client
 * observes a mid-run connection loss; slow_peer sleeps before the
 * reply -- timing only, artifacts unchanged.
 */

#ifndef EV8_SERVE_DAEMON_HH
#define EV8_SERVE_DAEMON_HH

#include <atomic>
#include <csignal>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hh"

namespace ev8
{

struct DaemonOptions
{
    /** AF_UNIX listener path; "" binds none. */
    std::string unixPath;

    /** TCP listener "host" ("" binds none) and port (0 = ephemeral). */
    std::string tcpHost;
    uint16_t tcpPort = 0;

    /**
     * Drain deadline in ms once a stop is requested: in-flight sessions
     * get this long to finish before being force-expired
     * (EV8_SERVE_DRAIN_MS in bench_serve).
     */
    uint64_t drainMs = 5000;

    /** Accept-loop poll tick in ms (also the read tick granularity). */
    int pollMs = 200;

    /**
     * Optional external stop flag, polled every tick -- bench_serve
     * points this at the sig_atomic_t its SIGTERM/SIGINT handler sets.
     * Non-zero requests a graceful drain.
     */
    const volatile std::sig_atomic_t *stopFlag = nullptr;
};

class ServeDaemon
{
  public:
    ServeDaemon(PredictionServer &server, DaemonOptions opts);

    /** run() must have returned (it joins); the dtor only closes fds. */
    ~ServeDaemon();

    ServeDaemon(const ServeDaemon &) = delete;
    ServeDaemon &operator=(const ServeDaemon &) = delete;

    /**
     * Binds every configured listener. False + @p err on failure (the
     * daemon is then unusable). At least one listener must be
     * configured.
     */
    bool listen(std::string &err);

    /** The TCP port actually bound (resolves an ephemeral port 0). */
    uint16_t boundTcpPort() const { return boundTcpPort_; }

    /**
     * Accepts and serves connections until a protocol shutdown or an
     * external stop, then drains and joins every connection thread.
     * Returns true on a clean exit, false on a hard accept error.
     */
    bool run();

    /** Did the last run() drain without force-expiring a session? */
    bool drainedClean() const { return drainedClean_; }

  private:
    void serveConnection(int fd);
    bool stopRequested() const;

    PredictionServer &server_;
    const DaemonOptions opts_;
    std::vector<int> listenFds_;
    uint16_t boundTcpPort_ = 0;
    std::vector<std::thread> connections_;
    std::atomic<bool> closing_{false}; //!< tells conn threads to exit
    bool drainedClean_ = true;
};

} // namespace ev8

#endif // EV8_SERVE_DAEMON_HH
