/**
 * @file
 * The serve wire protocol: line-oriented JSON, schema "ev8-serve-v1".
 *
 * One request object per line, one reply object per line, over an
 * AF_UNIX socket or a stdio loopback (bench_serve). Every reply carries
 * "ok": true plus op-specific fields, or "ok": false plus "error".
 *
 * Ops:
 *
 *     open     {"op":"open","session":S,"grid":G,
 *               "events":B,"metrics":B,"timing":B,"generic":B}
 *              creates session S over named grid G (admission control
 *              applies). Reply echoes the grid shape.
 *     start    {"op":"start","session":S}
 *              launches the session's producer/consumer threads.
 *     snapshot {"op":"snapshot","session":S}
 *              live progress: state, cells done/total, packets framed,
 *              ring stats, failure count. Never blocks on the run.
 *     wait     {"op":"wait","session":S}
 *              blocks until the session finishes; the reply carries the
 *              full per-cell output records (the checkpoint codec,
 *              sim/checkpoint.hh, one encoded line per cell in index
 *              order) and the structured CellFailures.
 *     ping     {"op":"ping","session":S}
 *              renews session S's lease (see EV8_SERVE_IDLE_TIMEOUT_MS)
 *              and echoes its state. The cheap keep-alive for a client
 *              that is neither polling nor waiting.
 *     stats    {"op":"stats"}          server-level counters.
 *     shutdown {"op":"shutdown"}       stop accepting; daemon exits.
 *
 * Typed refusals: an open refused by admission control comes back as
 * {"ok":false,"busy":true,"retry_after_ms":N,"error":...} -- the client
 * should back off N ms and retry. An open refused because the daemon is
 * draining (SIGTERM received) comes back as
 * {"ok":false,"draining":true,"error":...} -- the client should go
 * elsewhere; this daemon is on its way down. Plain {"ok":false,
 * "error":...} replies stay what they always were: protocol or server
 * errors with no retry semantics.
 *
 * The cell records are the byte-exact transport: a client that decodes
 * them and merges in index order reproduces the batch binary's
 * artifacts byte for byte (u64s ride as decimal strings, doubles as
 * IEEE-754 bit-pattern hex -- see GridCheckpoint's durability notes).
 * Within CellFailure, the u64 attempt_ns values ride as decimal strings
 * for the same reason.
 */

#ifndef EV8_SERVE_PROTOCOL_HH
#define EV8_SERVE_PROTOCOL_HH

#include <string>

#include "obs/json.hh"
#include "sim/suite_runner.hh"

namespace ev8
{

/** Wire schema identifier, echoed in open replies. */
inline constexpr const char *kServeSchema = "ev8-serve-v1";

/** One parsed client request (op-specific fields defaulted). */
struct ServeRequest
{
    std::string op;      //!< open|start|snapshot|wait|ping|stats|shutdown
    std::string session; //!< every per-session op
    std::string grid;    //!< open: named grid id ("fig5")

    // open: the instrumentation the session's cells run with. These
    // must mirror the batch binary's instrument() decisions for the
    // served artifacts to be byte-identical.
    bool wantEvents = false;   //!< "events": buffer misprediction events
    bool wantMetrics = true;   //!< "metrics": per-cell metric registries
    bool timing = true;        //!< "timing": SimConfig::profileTiming
    bool forceGeneric = false; //!< "generic": force the generic kernel
};

/** Serializes @p req as one request line (no trailing newline). */
std::string encodeRequest(const ServeRequest &req);

/**
 * Parses one request line. Throws std::runtime_error on malformed JSON,
 * a missing/unknown "op", or a missing required field.
 */
ServeRequest decodeRequest(const std::string &line);

/** A complete {"ok":false,"error":...} reply line. */
std::string errorReply(const std::string &message);

/**
 * An admission-refused reply: {"ok":false,"busy":true,
 * "retry_after_ms":N,"error":...}. The typed overload-shedding signal.
 */
std::string busyReply(const std::string &message, uint64_t retry_after_ms);

/** A drain-refused reply: {"ok":false,"draining":true,"error":...}. */
std::string drainingReply(const std::string &message);

/**
 * Writes @p f as a JSON object into @p w (attempt_ns as decimal
 * strings). Paired with readFailure for an exact round trip.
 */
void writeFailure(JsonWriter &w, const CellFailure &f);

/** Parses a writeFailure() object. Throws std::runtime_error. */
CellFailure readFailure(const JsonValue &v);

} // namespace ev8

#endif // EV8_SERVE_PROTOCOL_HH
