#include "serve/packet.hh"

#include <algorithm>
#include <sstream>

#include "frontend/fetch_block.hh"
#include "trace/varint.hh"

namespace ev8
{

namespace
{

/** Reads one varint from @p in, rethrowing truncation as PacketError. */
uint64_t
getVar(std::istringstream &in)
{
    try {
        return getVarint(in);
    } catch (const std::exception &) {
        throw PacketError("truncated packet payload");
    }
}

int
getByte(std::istringstream &in)
{
    const int c = in.get();
    if (c == std::char_traits<char>::eof())
        throw PacketError("truncated packet payload");
    return c;
}

} // namespace

StreamFramer::StreamFramer(const BlockStream &stream,
                           size_t blocks_per_packet)
    : stream_(stream),
      blocksPerPacket_(blocks_per_packet != 0 ? blocks_per_packet : 1)
{
}

bool
StreamFramer::next(Packet &out)
{
    if (sentEnd_)
        return false;
    std::ostringstream body;
    if (seq_ == 0) {
        out.type = Packet::Type::Hello;
        putVarint(body, stream_.name().size());
        body.write(stream_.name().data(),
                   static_cast<std::streamsize>(stream_.name().size()));
        putVarint(body, stream_.instructions());
        putVarint(body, stream_.blocks());
        putVarint(body, stream_.branches());
    } else if (nextBlock_ < stream_.blocks()) {
        out.type = Packet::Type::Blocks;
        const size_t count = std::min(blocksPerPacket_,
                                      stream_.blocks() - nextBlock_);
        putVarint(body, count);
        for (size_t i = 0; i < count; ++i) {
            const size_t b = nextBlock_ + i;
            const uint64_t addr = stream_.blockAddr(b);
            // Same delta discipline as the on-disk serializer: block
            // addresses are instruction-aligned, so the delta divides
            // evenly and zigzag keeps backward jumps small.
            putVarint(body, zigzag((static_cast<int64_t>(addr)
                                    - static_cast<int64_t>(prevAddr_))
                                   / static_cast<int64_t>(kInstrBytes)));
            body.put(static_cast<char>(
                (stream_.blockInstrs(b) << 1)
                | (stream_.blockEndsTaken(b) ? 1 : 0)));
            const unsigned nbr = stream_.numBranches(b);
            body.put(static_cast<char>(nbr));
            for (unsigned k = 0; k < nbr; ++k)
                body.put(static_cast<char>(
                    stream_.branchRaw(stream_.branchBegin(b) + k)));
            prevAddr_ = addr;
        }
        nextBlock_ += count;
    } else {
        out.type = Packet::Type::End;
        putVarint(body, stream_.blocks());
        putVarint(body, stream_.branches());
        sentEnd_ = true;
    }
    out.seq = seq_++;
    out.payload = std::move(body).str();
    return true;
}

void
StreamAssembler::accept(const Packet &p)
{
    if (done_)
        throw PacketError("frame after End");
    if (p.seq != nextSeq_) {
        throw PacketError("frame out of order: got seq "
                          + std::to_string(p.seq) + ", expected "
                          + std::to_string(nextSeq_));
    }
    ++nextSeq_;
    std::istringstream in(p.payload);

    switch (p.type) {
      case Packet::Type::Hello: {
        if (started_)
            throw PacketError("duplicate Hello frame");
        started_ = true;
        const uint64_t name_len = getVar(in);
        if (name_len > (1u << 20))
            throw PacketError("implausible stream name length");
        stream_.name_.assign(static_cast<size_t>(name_len), '\0');
        in.read(stream_.name_.data(),
                static_cast<std::streamsize>(name_len));
        if (!in)
            throw PacketError("truncated stream name");
        stream_.instructions_ = getVar(in);
        expectBlocks_ = getVar(in);
        expectBranches_ = getVar(in);
        // A corrupted Hello must not turn announced totals into a giant
        // reserve: reject anything orders of magnitude beyond a real
        // suite stream before touching the allocator.
        constexpr uint64_t kImplausibleTotal = uint64_t{1} << 32;
        if (stream_.instructions_ > (kImplausibleTotal << 8)
            || expectBlocks_ > kImplausibleTotal
            || expectBranches_ > kImplausibleTotal) {
            throw PacketError("implausible stream totals in Hello");
        }
        stream_.addr_.reserve(expectBlocks_);
        stream_.info_.reserve(expectBlocks_);
        stream_.branchBegin_.reserve(expectBlocks_ + 1);
        stream_.branchSlot_.reserve(expectBranches_);
        stream_.branchBegin_.push_back(0);
        break;
      }
      case Packet::Type::Blocks: {
        if (!started_)
            throw PacketError("Blocks frame before Hello");
        const uint64_t count = getVar(in);
        for (uint64_t i = 0; i < count; ++i) {
            const uint64_t addr = static_cast<uint64_t>(
                static_cast<int64_t>(prevAddr_)
                + unzigzag(getVar(in))
                      * static_cast<int64_t>(kInstrBytes));
            const int info = getByte(in);
            const int nbr = getByte(in);
            if (nbr > static_cast<int>(kFetchBlockInstrs))
                throw PacketError("implausible branch count");
            stream_.addr_.push_back(addr);
            stream_.info_.push_back(static_cast<uint8_t>(info));
            for (int k = 0; k < nbr; ++k)
                stream_.branchSlot_.push_back(
                    static_cast<uint8_t>(getByte(in)));
            stream_.branchBegin_.push_back(
                static_cast<uint32_t>(stream_.branchSlot_.size()));
            prevAddr_ = addr;
        }
        if (stream_.addr_.size() > expectBlocks_)
            throw PacketError("more blocks than Hello announced");
        break;
      }
      case Packet::Type::End: {
        if (!started_)
            throw PacketError("End frame before Hello");
        const uint64_t blocks = getVar(in);
        const uint64_t branches = getVar(in);
        if (blocks != stream_.addr_.size()
            || branches != stream_.branchSlot_.size()
            || blocks != expectBlocks_ || branches != expectBranches_) {
            throw PacketError("stream totals mismatch at End");
        }
        done_ = true;
        break;
      }
      default:
        throw PacketError("unknown packet type");
    }
}

BlockStream
StreamAssembler::take()
{
    if (!done_)
        throw PacketError("take() before End frame");
    return std::move(stream_);
}

} // namespace ev8
