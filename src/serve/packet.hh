/**
 * @file
 * Wire framing of decoded BlockStreams: the payload the serve transport
 * rings carry.
 *
 * A served session does not simulate the producer's BlockStream object;
 * it simulates a stream REASSEMBLED from framed packets, exactly as a
 * networked deployment would. The framing reuses the on-disk stream
 * serialization's per-block byte layout (delta-zigzag block address,
 * packed info byte, branch bytes -- see block_stream.cc), chunked into
 * bounded packets so the ring can apply backpressure:
 *
 *     Hello  { name, instructions, blocks, branches }
 *     Blocks { count, per-block records }           (repeated)
 *     End    { blocks, branches }                   (totals check)
 *
 * Packet payloads are self-contained byte strings; the sequence number
 * establishes order and lets the assembler detect drops. Reassembly is
 * exact: for any packet size, StreamAssembler::take() == the framed
 * stream, bit for bit (operator== covers every field), so a simulation
 * over the reassembled stream is byte-identical to a batch simulation
 * over the original. That equality is the transport's determinism
 * contract and is what the round-trip tests pin.
 */

#ifndef EV8_SERVE_PACKET_HH
#define EV8_SERVE_PACKET_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/block_stream.hh"

namespace ev8
{

/** Malformed / out-of-order / truncated frame. */
class PacketError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One framed transport unit. */
struct Packet
{
    enum class Type : uint8_t
    {
        Hello = 1,  //!< stream identity + totals
        Blocks = 2, //!< a bounded chunk of fetch-block records
        End = 3,    //!< totals check, closes the stream
    };

    Type type = Type::Hello;
    uint64_t seq = 0;    //!< 0-based position within one stream's frames
    std::string payload; //!< encoded body (see packet.cc)
};

/**
 * Frames one BlockStream into a Hello / Blocks* / End packet sequence,
 * one packet per next() call -- the producer loop is
 * `while (framer.next(p)) ring.push(std::move(p))`, so at most one
 * packet is in flight beyond what the ring holds.
 */
class StreamFramer
{
  public:
    /** @param blocks_per_packet max fetch blocks per Blocks frame. */
    StreamFramer(const BlockStream &stream, size_t blocks_per_packet);

    /** Produces the next frame. False when the sequence is complete. */
    bool next(Packet &out);

    /** Frames emitted so far (== the next frame's seq). */
    uint64_t framed() const { return seq_; }

  private:
    const BlockStream &stream_;
    const size_t blocksPerPacket_;
    uint64_t seq_ = 0;
    size_t nextBlock_ = 0;
    uint64_t prevAddr_ = 0;
    bool sentEnd_ = false;
};

/**
 * Rebuilds a BlockStream from its framed packets. accept() packets in
 * seq order until done(), then take() the stream. Throws PacketError on
 * any gap, duplicate, truncation or totals mismatch -- a transport
 * fault must surface as a structured session failure, never as a
 * silently different simulation.
 */
class StreamAssembler
{
  public:
    /** Feeds one frame. @p p must be the next seq in order. */
    void accept(const Packet &p);

    /** Has the End frame been accepted and verified? */
    bool done() const { return done_; }

    /** The reassembled stream; valid once done(). */
    BlockStream take();

  private:
    BlockStream stream_;
    uint64_t nextSeq_ = 0;
    uint64_t expectBlocks_ = 0;
    uint64_t expectBranches_ = 0;
    uint64_t prevAddr_ = 0;
    bool started_ = false;
    bool done_ = false;
};

} // namespace ev8

#endif // EV8_SERVE_PACKET_HH
