/**
 * @file
 * The serve transport's bounded SPSC ring.
 *
 * One producer thread (the session's trace framer) pushes packets, one
 * consumer thread (the session's simulation loop) pops them. The ring
 * has a fixed capacity chosen at construction: a producer that outruns
 * its consumer BLOCKS in push() (backpressure -- the daemon's memory for
 * one session is bounded by capacity * packet size, never by trace
 * length), and a consumer that outruns its producer blocks in pop().
 * Drain order is exactly push order (FIFO), which is what makes served
 * simulation deterministic: the consumer reassembles the stream from
 * the packets in the order the producer framed them, regardless of how
 * the two threads interleave.
 *
 * Shutdown has two flavours:
 *
 *  - close(): the producer is done. pop() keeps returning queued
 *    packets and then returns false -- a clean end-of-stream.
 *  - abort(): either side bails (session killed, transport fault).
 *    Both push() and pop() return false immediately and drop whatever
 *    is queued.
 *
 * Blocked waits feed the "serve.stall" span phase (always-on coarse
 * totals; full spans when a timeline is recording), so ring
 * backpressure is visible in the Perfetto timeline next to the cells it
 * delays. Stats() reports pushed/popped counts, both sides' cumulative
 * stall time and the high-water depth.
 *
 * The implementation is a mutex + two condvars, not a lock-free ring:
 * packets are kilobytes and the per-packet cost is dominated by
 * framing/simulation, so contention here is noise -- and the blocking
 * semantics (the whole point of the transport) come for free.
 */

#ifndef EV8_SERVE_RING_BUFFER_HH
#define EV8_SERVE_RING_BUFFER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "obs/trace_span.hh"

namespace ev8
{

/** Counters one SpscRing accumulated over its lifetime. */
struct RingStats
{
    uint64_t pushed = 0;      //!< packets accepted by push()
    uint64_t popped = 0;      //!< packets returned by pop()
    uint64_t pushStallNs = 0; //!< producer time blocked on a full ring
    uint64_t popStallNs = 0;  //!< consumer time blocked on an empty ring
    uint64_t maxDepth = 0;    //!< high-water queue depth
};

template <typename T>
class SpscRing
{
  public:
    /** @param capacity max queued items; must be >= 1. */
    explicit SpscRing(size_t capacity) : capacity_(capacity)
    {
        if (capacity_ == 0)
            throw std::invalid_argument("ring capacity must be >= 1");
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /**
     * Enqueues @p value, blocking while the ring is full. Returns false
     * (value dropped) when the ring is aborted, or when close() was
     * already called (a producer bug surfaced instead of hidden).
     */
    bool
    push(T value)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (queue_.size() >= capacity_ && !aborted_ && !closed_)
            stallWait(lock, notFull_, stats_.pushStallNs,
                      "ring.push_wait", [&] {
                          return queue_.size() < capacity_ || aborted_
                              || closed_;
                      });
        if (aborted_ || closed_)
            return false;
        queue_.push_back(std::move(value));
        ++stats_.pushed;
        if (queue_.size() > stats_.maxDepth)
            stats_.maxDepth = queue_.size();
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Dequeues into @p out, blocking while the ring is empty and still
     * open. Returns false at end-of-stream (closed and drained) or on
     * abort (queued items are dropped).
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (queue_.empty() && !closed_ && !aborted_)
            stallWait(lock, notEmpty_, stats_.popStallNs,
                      "ring.pop_wait", [&] {
                          return !queue_.empty() || closed_ || aborted_;
                      });
        if (aborted_ || queue_.empty())
            return false;
        out = std::move(queue_.front());
        queue_.pop_front();
        ++stats_.popped;
        lock.unlock();
        notFull_.notify_one();
        return true;
    }

    /** Producer is done: pop() drains the queue, then returns false. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    /** Tear down both sides immediately; queued items are dropped. */
    void
    abort()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            aborted_ = true;
            queue_.clear();
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    bool
    aborted() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return aborted_;
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    size_t capacity() const { return capacity_; }

    size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return queue_.size();
    }

    RingStats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stats_;
    }

  private:
    /**
     * Waits for @p ready under @p lock, attributing the blocked time to
     * the "serve.stall" phase (and a named timeline span when one is
     * being recorded).
     */
    template <typename Pred>
    void
    stallWait(std::unique_lock<std::mutex> &lock,
              std::condition_variable &cv, uint64_t &stall_ns,
              const char *span_name, Pred ready)
    {
        SpanTracer &tracer = SpanTracer::global();
        const uint64_t start = tracer.nowNs();
        cv.wait(lock, ready);
        const uint64_t waited = tracer.nowNs() - start;
        stall_ns += waited;
        tracer.addPhase(SpanPhase::Stall, waited);
        if (tracer.enabled())
            tracer.record(SpanPhase::Stall, span_name, "", start, waited);
    }

    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> queue_;
    bool closed_ = false;
    bool aborted_ = false;
    RingStats stats_;
};

} // namespace ev8

#endif // EV8_SERVE_RING_BUFFER_HH
