/**
 * @file
 * The EV8 predictor index functions of Section 7.
 *
 * Hardware constraints shape everything here:
 *
 *  - 8 index bits are shared by all four logical tables: the bank number
 *    (i1, i0), computed a cycle ahead (Section 6.2), and the wordline
 *    number (i10..i5), which feeds the array decoder directly and
 *    therefore cannot be hashed at all;
 *  - column bits (i15..i11 for G0/G1/Meta, i13..i11 for BIM) may each
 *    use at most one 2-entry XOR gate (one cycle phase);
 *  - the in-word bit position (i4..i2) goes through the "unshuffle" XOR
 *    permutation whose parameter may be an arbitrarily deep XOR tree
 *    (a whole cycle is available to compute it).
 *
 * Equation provenance: the published equations for the G1 and Meta
 * columns and unshuffles, the wordline, and the G0/Meta sharing of
 * i15/i14 are implemented verbatim. Three spots are typographically
 * garbled in the archival text and are reconstructed here following the
 * paper's own design principles (Section 7.5): the BIM extra bits, the
 * G0 column bits i13..i11, and the G0 unshuffle bit i4 (plus the
 * branch-offset terms a4/a3 that the OCR dropped). Each reconstruction
 * is marked "[reconstructed]" below.
 */

#ifndef EV8_CORE_INDEX_FUNCTIONS_HH
#define EV8_CORE_INDEX_FUNCTIONS_HH

#include <cstddef>
#include <cstdint>

#include "predictors/gskew_policy.hh"

namespace ev8
{

/** How the shared (unhashed) wordline number is chosen -- Fig. 9. */
enum class WordlineMode
{
    /**
     * The EV8 choice: 4 lghist bits + 2 block address bits,
     * (i10..i5) = (h3, h2, h1, h0, a8, a7). This is why the BIM table
     * is "indexed using a 4-bit history length" (Section 4.7).
     */
    Ev8,

    /**
     * The rejected alternative: block address bits only. Simulations
     * showed the access distribution over the BIM table (and the shared
     * wordlines) was unbalanced -- some regions congested, others idle.
     */
    AddressOnly,
};

/** Per-fetch-block inputs to the index functions. */
struct Ev8IndexInput
{
    uint64_t blockAddr = 0; //!< A: address of the fetch block
    uint64_t hist = 0;      //!< H: three-blocks-old lghist (h20..h0)
    uint64_t zAddr = 0;     //!< Z: address of the previous fetch block
    unsigned bank = 0;      //!< (i1,i0) from the bank-number computation
};

/** Physical coordinates of one 8-bit prediction word. */
struct Ev8WordCoords
{
    unsigned bank = 0;      //!< 0..3
    unsigned wordline = 0;  //!< 0..63
    unsigned column = 0;    //!< 0..31 (G0/G1/Meta) or 0..7 (BIM)
    unsigned unshuffle = 0; //!< 3-bit XOR-permutation parameter u
};

/** Column bits per table: 5 for G0/G1/Meta, 3 for BIM. */
constexpr unsigned ev8ColumnBits(TableId table)
{
    return table == BIM ? 3 : 5;
}

/** log2 of a table's prediction entries: 14 for BIM, 16 otherwise. */
constexpr unsigned ev8IndexBits(TableId table)
{
    return 2 + 3 + 6 + ev8ColumnBits(table);
}

/** Computes the word coordinates for @p table under @p mode. */
Ev8WordCoords ev8WordCoords(TableId table, const Ev8IndexInput &in,
                            WordlineMode mode);

/**
 * The in-word bit position of a branch: its own PC offset bits
 * (a4, a3, a2) passed through the XOR unshuffle permutation.
 */
constexpr unsigned
ev8BitOffset(uint64_t branch_pc, unsigned unshuffle)
{
    return (static_cast<unsigned>(branch_pc >> 2) & 7) ^ (unshuffle & 7);
}

/**
 * Flat entry index with the paper's bit layout:
 * (i1,i0) bank, (i4..i2) offset, (i10..i5) wordline, (i15..i11) column.
 * The most significant bit is the top column bit, so dropping the MSB
 * (what the half-size hysteresis arrays do, Section 4.4) halves the
 * column space -- exactly the hardware behaviour.
 */
size_t ev8EntryIndex(TableId table, const Ev8IndexInput &in,
                     uint64_t branch_pc, WordlineMode mode);

/** Decomposes a flat index back into coordinates (offset via u = 0). */
Ev8WordCoords ev8DecomposeIndex(TableId table, size_t index);

/** The in-word offset field (i4..i2) of a flat index. */
constexpr unsigned
ev8IndexOffset(size_t index)
{
    return static_cast<unsigned>((index >> 2) & 7);
}

} // namespace ev8

#endif // EV8_CORE_INDEX_FUNCTIONS_HH
