#include "core/ev8_predictor.hh"

#include <cassert>

namespace ev8
{

namespace
{

/** Rebuilds word coordinates + bit position from a flat entry index. */
struct FlatRef
{
    Ev8WordCoords coords;
    unsigned bitpos;

    FlatRef(TableId table, size_t idx)
        : coords(ev8DecomposeIndex(table, idx)),
          bitpos(ev8IndexOffset(idx))
    {}
};

} // namespace

bool
Ev8Predictor::PhysicalFacade::taken(TableId t, size_t idx) const
{
    const FlatRef ref(t, idx);
    return arrays.readPredBit(t, ref.coords, ref.bitpos);
}

void
Ev8Predictor::PhysicalFacade::strengthen(TableId t, size_t idx)
{
    // Partial-update strengthen: copy the prediction bit into the
    // hysteresis bit -- a hysteresis-array-only write (Section 4.3).
    const FlatRef ref(t, idx);
    arrays.writeHystBit(t, ref.coords, ref.bitpos,
                        arrays.readPredBit(t, ref.coords, ref.bitpos));
}

void
Ev8Predictor::PhysicalFacade::update(TableId t, size_t idx, bool v)
{
    // Full 2-bit counter step: read both bits, write back the stepped
    // state (a misprediction-path access, Section 4.3).
    const FlatRef ref(t, idx);
    const bool p = arrays.readPredBit(t, ref.coords, ref.bitpos);
    const bool h = arrays.readHystBit(t, ref.coords, ref.bitpos);
    if (p == v) {
        arrays.writeHystBit(t, ref.coords, ref.bitpos, p); // strengthen
    } else if (h == p) {
        arrays.writeHystBit(t, ref.coords, ref.bitpos, !p); // weaken
    } else {
        arrays.writePredBit(t, ref.coords, ref.bitpos, v);  // flip
        arrays.writeHystBit(t, ref.coords, ref.bitpos, !v);
    }
}

Ev8Predictor::Ev8Predictor(const Ev8Config &config) : cfg(config)
{
}

Ev8IndexInput
Ev8Predictor::indexInput(const BranchSnapshot &snap)
{
    Ev8IndexInput in;
    in.blockAddr = snap.blockAddr;
    in.hist = snap.hist.indexHist;
    in.zAddr = snap.hist.pathZ;
    in.bank = snap.bank;
    return in;
}

size_t
Ev8Predictor::tableIndex(TableId table, const BranchSnapshot &snap) const
{
    return ev8EntryIndex(table, indexInput(snap), snap.pc, cfg.wordline);
}

GskewLookup
Ev8Predictor::lookup(const BranchSnapshot &snap) const
{
    GskewLookup look;
    const Ev8IndexInput in = indexInput(snap);
    for (unsigned t = 0; t < kNumTables; ++t) {
        look.idx[t] = ev8EntryIndex(static_cast<TableId>(t), in, snap.pc,
                                    cfg.wordline);
    }
    const PhysicalFacade facade{
        const_cast<Ev8PhysicalStorage &>(arrays)};
    computeGskewVotes(facade, look);
    return look;
}

bool
Ev8Predictor::predict(const BranchSnapshot &snap)
{
    last = lookup(snap);
    return last.overall;
}

void
Ev8Predictor::update(const BranchSnapshot &snap, bool taken, bool)
{
    assert(last.idx[G1] == tableIndex(G1, snap));
    (void)snap;
    if (statsEnabled())
        stats.note(last, taken);
    PhysicalFacade facade{arrays};
    if (cfg.partialUpdate)
        gskewPartialUpdate(facade, last, taken);
    else
        gskewTotalUpdate(facade, last, taken);
}

Ev8BlockPrediction
Ev8Predictor::predictBlock(const Ev8IndexInput &in) const
{
    Ev8BlockPrediction out;
    std::array<uint8_t, kNumTables> words{};
    for (unsigned t = 0; t < kNumTables; ++t) {
        const auto id = static_cast<TableId>(t);
        out.coords[t] = ev8WordCoords(id, in, cfg.wordline);
        words[t] = arrays.readPredWord(id, out.coords[t]);
    }
    for (unsigned offset = 0; offset < Ev8BlockPrediction::kSlots;
         ++offset) {
        // The unshuffle: the instruction at in-block offset o consumes
        // bit (o XOR u_table) of each table's word.
        auto bitOf = [&](TableId t) {
            const unsigned pos = offset ^ (out.coords[t].unshuffle & 7);
            return ((words[t] >> pos) & 1) != 0;
        };
        const bool bim = bitOf(BIM);
        const bool g0 = bitOf(G0);
        const bool g1 = bitOf(G1);
        const bool meta = bitOf(META);
        const bool majority =
            (static_cast<int>(bim) + g0 + g1) >= 2;
        out.takenAtOffset[offset] = meta ? majority : bim;
    }
    return out;
}

uint64_t
Ev8Predictor::storageBits() const
{
    return Ev8PhysicalStorage::storageBits();
}

std::string
Ev8Predictor::name() const
{
    return cfg.label;
}

VoteSnapshot
Ev8Predictor::lastVotes() const
{
    VoteSnapshot v;
    v.valid = true;
    v.bim = last.bimPred;
    v.g0 = last.g0Pred;
    v.g1 = last.g1Pred;
    v.meta = last.metaPred;
    v.majority = last.majority;
    return v;
}

void
Ev8Predictor::publishMetrics(MetricRegistry &registry,
                             const std::string &prefix) const
{
    publishGskewVoteStats(registry, prefix, stats);
    arrays.publishMetrics(registry, prefix + ".storage");
}

void
Ev8Predictor::reset()
{
    arrays.reset();
    stats = GskewVoteStats{};
}

} // namespace ev8
