#include "core/physical_storage.hh"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "obs/metrics.hh"

namespace ev8
{

static_assert(Ev8PhysicalStorage::storageBits() == 352 * 1024,
              "the EV8 predictor is 352 Kbits (208K pred + 144K hyst)");

Ev8PhysicalStorage::Ev8PhysicalStorage()
{
    for (unsigned t = 0; t < kNumTables; ++t) {
        const auto id = static_cast<TableId>(t);
        pred[t].assign(size_t{4} * kEv8Wordlines * ev8PredColumns(id) * 8,
                       0);
        hyst[t].assign(size_t{4} * kEv8Wordlines * ev8HystColumns(id) * 8,
                       1);
    }
}

size_t
Ev8PhysicalStorage::predBitIndex(TableId table, const Ev8WordCoords &c,
                                 unsigned bitpos) const
{
    const unsigned cols = ev8PredColumns(table);
    assert(c.bank < 4 && c.wordline < kEv8Wordlines && c.column < cols
           && bitpos < 8);
    return ((static_cast<size_t>(c.bank) * kEv8Wordlines + c.wordline)
            * cols + c.column) * 8 + bitpos;
}

size_t
Ev8PhysicalStorage::hystBitIndex(TableId table, const Ev8WordCoords &c,
                                 unsigned bitpos) const
{
    const unsigned cols = ev8HystColumns(table);
    const unsigned column = c.column & (cols - 1); // drop the index MSB
    assert(c.bank < 4 && c.wordline < kEv8Wordlines && bitpos < 8);
    return ((static_cast<size_t>(c.bank) * kEv8Wordlines + c.wordline)
            * cols + column) * 8 + bitpos;
}

uint8_t
Ev8PhysicalStorage::readPredWord(TableId table, const Ev8WordCoords &c) const
{
    if (tracking) {
        ++access[table].predReads;
        ++wordlineReads_[table][c.wordline];
    }
    uint8_t word = 0;
    for (unsigned b = 0; b < 8; ++b)
        word |= static_cast<uint8_t>(pred[table][predBitIndex(table, c, b)]
                                     << b);
    return word;
}

bool
Ev8PhysicalStorage::readPredBit(TableId table, const Ev8WordCoords &c,
                                unsigned bitpos) const
{
    if (tracking) {
        ++access[table].predReads;
        ++wordlineReads_[table][c.wordline];
    }
    return pred[table][predBitIndex(table, c, bitpos)] != 0;
}

void
Ev8PhysicalStorage::writePredBit(TableId table, const Ev8WordCoords &c,
                                 unsigned bitpos, bool value)
{
    if (tracking)
        ++access[table].predWrites;
    pred[table][predBitIndex(table, c, bitpos)] = value ? 1 : 0;
}

bool
Ev8PhysicalStorage::readHystBit(TableId table, const Ev8WordCoords &c,
                                unsigned bitpos) const
{
    if (tracking)
        ++access[table].hystReads;
    return hyst[table][hystBitIndex(table, c, bitpos)] != 0;
}

void
Ev8PhysicalStorage::writeHystBit(TableId table, const Ev8WordCoords &c,
                                 unsigned bitpos, bool value)
{
    if (tracking)
        ++access[table].hystWrites;
    hyst[table][hystBitIndex(table, c, bitpos)] = value ? 1 : 0;
}

void
Ev8PhysicalStorage::reset()
{
    for (unsigned t = 0; t < kNumTables; ++t) {
        pred[t].assign(pred[t].size(), 0);
        hyst[t].assign(hyst[t].size(), 1);
    }
    access = {};
    wordlineReads_ = {};
}

void
Ev8PhysicalStorage::publishMetrics(MetricRegistry &registry,
                                   const std::string &prefix) const
{
    static const char *const names[kNumTables] = {"bim", "g0", "g1",
                                                  "meta"};
    for (unsigned t = 0; t < kNumTables; ++t) {
        const std::string base = prefix + "." + names[t];
        const AccessStats &a = access[t];
        registry.counter(base + ".pred_reads").inc(a.predReads);
        registry.counter(base + ".pred_writes").inc(a.predWrites);
        registry.counter(base + ".hyst_reads").inc(a.hystReads);
        registry.counter(base + ".hyst_writes").inc(a.hystWrites);

        const auto &wl = wordlineReads_[t];
        const uint64_t max =
            *std::max_element(wl.begin(), wl.end());
        const uint64_t total =
            std::accumulate(wl.begin(), wl.end(), uint64_t{0});
        registry.gauge(base + ".wordline_max_reads")
            .set(static_cast<double>(max));
        registry.gauge(base + ".wordline_mean_reads")
            .set(static_cast<double>(total) / kEv8Wordlines);
    }
}

} // namespace ev8
