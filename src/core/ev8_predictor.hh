/**
 * @file
 * The Alpha EV8 conditional branch predictor -- the paper's artifact.
 *
 * A 352 Kbit 2Bc-gskew (Table 1 geometry) implemented over the physical
 * banked storage of Section 7.1, indexed with the hardware-constrained
 * functions of Sections 7.3-7.5, driven by the EV8 information vector
 * (three-fetch-blocks-old lghist + path, Section 5), and trained with
 * the partial-update policy of Section 4.2.
 *
 * The class exposes two equivalent access paths:
 *  - the ConditionalBranchPredictor interface used by the trace
 *    simulator (one conditional branch at a time);
 *  - predictBlock(), the hardware-faithful path that reads one 8-bit
 *    word per logical table and produces all up-to-8 predictions of a
 *    fetch block from a single access, exactly as the arrays do.
 */

#ifndef EV8_CORE_EV8_PREDICTOR_HH
#define EV8_CORE_EV8_PREDICTOR_HH

#include <array>
#include <string>

#include "core/index_functions.hh"
#include "core/physical_storage.hh"
#include "predictors/gskew_policy.hh"
#include "predictors/predictor.hh"

namespace ev8
{

/** Configuration switches of the constrained EV8 model. */
struct Ev8Config
{
    /** Shared wordline selection (the Fig. 9 ablation axis). */
    WordlineMode wordline = WordlineMode::Ev8;

    /** Section 4.2 partial update (false = total update ablation). */
    bool partialUpdate = true;

    std::string label = "EV8";
};

/** All eight predictions of one fetch block, plus the word coordinates
 *  of the access that produced them. */
struct Ev8BlockPrediction
{
    /** Instruction slots per fetch block. */
    static constexpr unsigned kSlots = 8;

    std::array<bool, kSlots> takenAtOffset{};
    std::array<Ev8WordCoords, kNumTables> coords{};
};

class Ev8Predictor final : public ConditionalBranchPredictor
{
  public:
    explicit Ev8Predictor(const Ev8Config &config = Ev8Config{});

    bool predict(const BranchSnapshot &snap) override;
    void update(const BranchSnapshot &snap, bool taken,
                bool predicted_taken) override;
    uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;
    VoteSnapshot lastVotes() const override;

    /** Publishes vote/conflict tallies plus the physical arrays'
     *  wordline access counts ("<prefix>.storage.*"). */
    void publishMetrics(MetricRegistry &registry,
                        const std::string &prefix) const override;

    /** Also switches the physical arrays' access tracking. */
    void
    enableStats(bool on) override
    {
        ConditionalBranchPredictor::enableStats(on);
        arrays.setTracking(on);
    }

    /**
     * Hardware-faithful block-wide prediction: one 8-bit word read per
     * logical table; the prediction for the instruction at in-block
     * offset o combines bit (o XOR u_table) of each table's word.
     */
    Ev8BlockPrediction predictBlock(const Ev8IndexInput &in) const;

    /** Flat entry index for one branch (exposed for tests). */
    size_t tableIndex(TableId table, const BranchSnapshot &snap) const;

    const Ev8Config &config() const { return cfg; }
    const Ev8PhysicalStorage &storage() const { return arrays; }

  private:
    /** Adapter mapping flat indices onto the physical arrays for the
     *  shared 2Bc-gskew policy. */
    struct PhysicalFacade
    {
        Ev8PhysicalStorage &arrays;

        bool taken(TableId t, size_t idx) const;
        void strengthen(TableId t, size_t idx);
        void update(TableId t, size_t idx, bool v);
    };

    static Ev8IndexInput indexInput(const BranchSnapshot &snap);
    GskewLookup lookup(const BranchSnapshot &snap) const;

    Ev8Config cfg;
    Ev8PhysicalStorage arrays;
    GskewLookup last;
    GskewVoteStats stats;
};

} // namespace ev8

#endif // EV8_CORE_EV8_PREDICTOR_HH
