#include "core/index_functions.hh"

#include <cassert>

#include "common/bits.hh"

namespace ev8
{

namespace
{

/** Bit i of the block address, using the paper's a-numbering. */
constexpr unsigned
a(const Ev8IndexInput &in, unsigned i)
{
    return static_cast<unsigned>(bit(in.blockAddr, i));
}

/** Bit i of the previous fetch block's address (path information). */
constexpr unsigned
z(const Ev8IndexInput &in, unsigned i)
{
    return static_cast<unsigned>(bit(in.zAddr, i));
}

/** Bit i of the three-blocks-old lghist. */
constexpr unsigned
h(const Ev8IndexInput &in, unsigned i)
{
    return static_cast<unsigned>(bit(in.hist, i));
}

/**
 * The shared wordline number (i10..i5). Under the EV8 choice, mixing 4
 * history bits with 2 address bits spreads accesses uniformly over the
 * 64 wordlines; under AddressOnly, the wordline is pure PC bits
 * [reconstructed: a15..a12 + a8, a7], whose clustered distribution in
 * real code is precisely what made this variant lose (Fig. 9).
 */
unsigned
wordlineBits(const Ev8IndexInput &in, WordlineMode mode)
{
    if (mode == WordlineMode::Ev8) {
        // (i10,i9,i8,i7,i6,i5) = (h3, h2, h1, h0, a8, a7)   [published]
        return (h(in, 3) << 5) | (h(in, 2) << 4) | (h(in, 1) << 3)
            | (h(in, 0) << 2) | (a(in, 8) << 1) | a(in, 7);
    }
    return (a(in, 15) << 5) | (a(in, 14) << 4) | (a(in, 13) << 3)
        | (a(in, 12) << 2) | (a(in, 8) << 1) | a(in, 7);
}

/** BIM column (i13,i12,i11) = (a11, a10^z5, a9^z6)  [reconstructed]. */
unsigned
columnBIM(const Ev8IndexInput &in)
{
    return (a(in, 11) << 2) | ((a(in, 10) ^ z(in, 5)) << 1)
        | (a(in, 9) ^ z(in, 6));
}

/**
 * G0 column. i15, i14 are shared with Meta [published]; i13..i11 are
 * [reconstructed] single-XOR pairs chosen, per the Section 7.5
 * principles, from history-bit pairs not used by G1 or Meta.
 */
unsigned
columnG0(const Ev8IndexInput &in)
{
    return ((h(in, 7) ^ h(in, 11)) << 4)     // i15 (= Meta i15)
        | ((h(in, 8) ^ h(in, 12)) << 3)      // i14 (= Meta i14)
        | ((h(in, 10) ^ h(in, 5)) << 2)      // i13 [reconstructed]
        | ((h(in, 12) ^ h(in, 6)) << 1)      // i12 [reconstructed]
        | (h(in, 9) ^ a(in, 10));            // i11 [reconstructed]
}

/** G1 column (i15..i11) = (h19^h12, h18^h11, h17^h10, h16^h4, h15^h20)
 *  [published]. */
unsigned
columnG1(const Ev8IndexInput &in)
{
    return ((h(in, 19) ^ h(in, 12)) << 4) | ((h(in, 18) ^ h(in, 11)) << 3)
        | ((h(in, 17) ^ h(in, 10)) << 2) | ((h(in, 16) ^ h(in, 4)) << 1)
        | (h(in, 15) ^ h(in, 20));
}

/** Meta column (i15..i11) = (h7^h11, h8^h12, h5^h13, h4^h9, a9^h6)
 *  [published]. */
unsigned
columnMeta(const Ev8IndexInput &in)
{
    return ((h(in, 7) ^ h(in, 11)) << 4) | ((h(in, 8) ^ h(in, 12)) << 3)
        | ((h(in, 5) ^ h(in, 13)) << 2) | ((h(in, 4) ^ h(in, 9)) << 1)
        | (a(in, 9) ^ h(in, 6));
}

/**
 * BIM unshuffle parameter: the branch offset is permuted by
 * (0, z5, z6) [reconstructed], injecting last-block path information
 * (Section 7.4: "path information from the last instruction fetch
 * block (that is Z) is used").
 */
unsigned
unshuffleBIM(const Ev8IndexInput &in)
{
    return (0u << 2) | (z(in, 5) << 1) | z(in, 6);
}

/**
 * G0 unshuffle parameter. u1 and u0 follow the published i3/i2 terms
 * (a11^h9^h10^h12^z6^a5 and a14^a10^h6^h4^h7^a6); u2 is
 * [reconstructed].
 */
unsigned
unshuffleG0(const Ev8IndexInput &in)
{
    const unsigned u2 = a(in, 12) ^ a(in, 9) ^ h(in, 5) ^ h(in, 8)
        ^ h(in, 11) ^ z(in, 5);                       // [reconstructed]
    const unsigned u1 = a(in, 11) ^ h(in, 9) ^ h(in, 10) ^ h(in, 12)
        ^ z(in, 6) ^ a(in, 5);                        // [published]
    const unsigned u0 = a(in, 14) ^ a(in, 10) ^ h(in, 6) ^ h(in, 4)
        ^ h(in, 7) ^ a(in, 6);                        // [published]
    return (u2 << 2) | (u1 << 1) | u0;
}

/**
 * G1 unshuffle parameter [published]. The deepest XOR tree of the
 * design: Section 8.5 notes 11 information bits feed one unshuffle bit
 * of G1 (u0 below).
 */
unsigned
unshuffleG1(const Ev8IndexInput &in)
{
    const unsigned u2 = h(in, 9) ^ h(in, 14) ^ h(in, 15) ^ h(in, 16)
        ^ z(in, 6);
    const unsigned u1 = a(in, 11) ^ a(in, 14) ^ a(in, 6) ^ h(in, 4)
        ^ h(in, 6) ^ a(in, 10) ^ a(in, 13) ^ h(in, 5) ^ h(in, 11)
        ^ h(in, 13) ^ h(in, 18) ^ h(in, 19) ^ h(in, 20) ^ z(in, 5);
    const unsigned u0 = a(in, 5) ^ a(in, 9) ^ h(in, 4) ^ h(in, 8)
        ^ h(in, 7) ^ h(in, 10) ^ h(in, 12) ^ h(in, 13) ^ h(in, 14)
        ^ h(in, 17);
    return (u2 << 2) | (u1 << 1) | u0;
}

/** Meta unshuffle parameter [published]. */
unsigned
unshuffleMeta(const Ev8IndexInput &in)
{
    const unsigned u2 = a(in, 10) ^ a(in, 5) ^ h(in, 7) ^ h(in, 10)
        ^ h(in, 14) ^ h(in, 13) ^ z(in, 5);
    const unsigned u1 = a(in, 12) ^ a(in, 14) ^ a(in, 6) ^ h(in, 4)
        ^ h(in, 6) ^ h(in, 8) ^ h(in, 14);
    const unsigned u0 = a(in, 9) ^ a(in, 11) ^ a(in, 13) ^ h(in, 5)
        ^ h(in, 9) ^ h(in, 11) ^ h(in, 12) ^ z(in, 6);
    return (u2 << 2) | (u1 << 1) | u0;
}

} // namespace

Ev8WordCoords
ev8WordCoords(TableId table, const Ev8IndexInput &in, WordlineMode mode)
{
    Ev8WordCoords coords;
    coords.bank = in.bank & 0x3;
    coords.wordline = wordlineBits(in, mode);
    switch (table) {
      case BIM:
        coords.column = columnBIM(in);
        coords.unshuffle = unshuffleBIM(in);
        break;
      case G0:
        coords.column = columnG0(in);
        coords.unshuffle = unshuffleG0(in);
        break;
      case G1:
        coords.column = columnG1(in);
        coords.unshuffle = unshuffleG1(in);
        break;
      case META:
        coords.column = columnMeta(in);
        coords.unshuffle = unshuffleMeta(in);
        break;
      default:
        assert(false && "bad table id");
    }
    return coords;
}

size_t
ev8EntryIndex(TableId table, const Ev8IndexInput &in, uint64_t branch_pc,
              WordlineMode mode)
{
    const Ev8WordCoords c = ev8WordCoords(table, in, mode);
    const unsigned offset = ev8BitOffset(branch_pc, c.unshuffle);
    return static_cast<size_t>(c.bank) | (static_cast<size_t>(offset) << 2)
        | (static_cast<size_t>(c.wordline) << 5)
        | (static_cast<size_t>(c.column) << 11);
}

Ev8WordCoords
ev8DecomposeIndex(TableId table, size_t index)
{
    Ev8WordCoords coords;
    coords.bank = static_cast<unsigned>(index & 0x3);
    coords.wordline = static_cast<unsigned>((index >> 5) & 0x3f);
    coords.column = static_cast<unsigned>(
        (index >> 11) & mask(ev8ColumnBits(table)));
    coords.unshuffle = 0;
    return coords;
}

} // namespace ev8
