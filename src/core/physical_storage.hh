/**
 * @file
 * The physical memory organization of the EV8 branch predictor
 * (Section 7.1).
 *
 * Logically the predictor has four tables (x prediction + hysteresis),
 * but physically it is just eight memory arrays: for each of the four
 * banks, one prediction array and one hysteresis array. Each bank has
 * 64 wordlines; a wordline holds 32 8-bit prediction words for each of
 * G0, G1 and Meta plus 8 8-bit words for BIM. A prediction access
 * selects one wordline, then one 8-bit word per logical table, then
 * permutes the word's bits through the XOR unshuffle.
 *
 * Hysteresis arrays: BIM and G1 are full size; G0 and Meta have half
 * the columns -- the same index function minus its most significant
 * (column) bit, so two prediction entries share one hysteresis entry
 * (Section 4.4).
 */

#ifndef EV8_CORE_PHYSICAL_STORAGE_HH
#define EV8_CORE_PHYSICAL_STORAGE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/index_functions.hh"

namespace ev8
{

/** Wordlines per bank. */
constexpr unsigned kEv8Wordlines = 64;

/** Prediction-array columns (8-bit words per wordline) per table. */
constexpr unsigned
ev8PredColumns(TableId table)
{
    return table == BIM ? 8 : 32;
}

/** Hysteresis-array columns per table: half size for G0 and Meta. */
constexpr unsigned
ev8HystColumns(TableId table)
{
    switch (table) {
      case BIM: return 8;
      case G0: return 16;
      case G1: return 32;
      case META: return 16;
      default: return 0;
    }
}

/**
 * Bit-accurate model of the eight EV8 predictor memory arrays.
 *
 * Initial state is weakly not-taken everywhere: prediction bit 0,
 * hysteresis bit 1.
 */
class Ev8PhysicalStorage
{
  public:
    Ev8PhysicalStorage();

    /** Reads one full 8-bit prediction word (one array access). */
    uint8_t readPredWord(TableId table, const Ev8WordCoords &c) const;

    /** Reads/writes a single prediction bit. */
    bool readPredBit(TableId table, const Ev8WordCoords &c,
                     unsigned bitpos) const;
    void writePredBit(TableId table, const Ev8WordCoords &c,
                      unsigned bitpos, bool value);

    /**
     * Reads/writes a hysteresis bit. The column is internally reduced
     * to the hysteresis array's column count (dropping the index MSB),
     * which is where the sharing of Section 4.4 happens.
     */
    bool readHystBit(TableId table, const Ev8WordCoords &c,
                     unsigned bitpos) const;
    void writeHystBit(TableId table, const Ev8WordCoords &c,
                      unsigned bitpos, bool value);

    /** Total bits: 208 Kbits prediction + 144 Kbits hysteresis. */
    static constexpr uint64_t
    storageBits()
    {
        uint64_t bits = 0;
        for (unsigned t = 0; t < kNumTables; ++t) {
            const auto id = static_cast<TableId>(t);
            bits += uint64_t{4} * kEv8Wordlines * ev8PredColumns(id) * 8;
            bits += uint64_t{4} * kEv8Wordlines * ev8HystColumns(id) * 8;
        }
        return bits;
    }

    void reset();

  private:
    size_t predBitIndex(TableId table, const Ev8WordCoords &c,
                        unsigned bitpos) const;
    size_t hystBitIndex(TableId table, const Ev8WordCoords &c,
                        unsigned bitpos) const;

    // One byte per bit: simple and fast enough for simulation.
    std::array<std::vector<uint8_t>, kNumTables> pred;
    std::array<std::vector<uint8_t>, kNumTables> hyst;
};

/**
 * Checks the single-ported constraint: within one cycle (two fetch
 * blocks), no bank may be accessed twice. The bank-number computation
 * of Section 6.2 guarantees this by construction; the checker verifies
 * it dynamically in tests and the banking bench.
 */
class SinglePortChecker
{
  public:
    /** Starts a new cycle (two fetch-block slots). */
    void
    beginCycle()
    {
        accessed.fill(false);
    }

    /**
     * Registers an access to @p bank. Returns false if the bank was
     * already accessed this cycle (a port conflict).
     */
    bool
    access(unsigned bank)
    {
        if (accessed[bank & 0x3])
            return false;
        accessed[bank & 0x3] = true;
        return true;
    }

  private:
    std::array<bool, 4> accessed{};
};

} // namespace ev8

#endif // EV8_CORE_PHYSICAL_STORAGE_HH
