/**
 * @file
 * The physical memory organization of the EV8 branch predictor
 * (Section 7.1).
 *
 * Logically the predictor has four tables (x prediction + hysteresis),
 * but physically it is just eight memory arrays: for each of the four
 * banks, one prediction array and one hysteresis array. Each bank has
 * 64 wordlines; a wordline holds 32 8-bit prediction words for each of
 * G0, G1 and Meta plus 8 8-bit words for BIM. A prediction access
 * selects one wordline, then one 8-bit word per logical table, then
 * permutes the word's bits through the XOR unshuffle.
 *
 * Hysteresis arrays: BIM and G1 are full size; G0 and Meta have half
 * the columns -- the same index function minus its most significant
 * (column) bit, so two prediction entries share one hysteresis entry
 * (Section 4.4).
 */

#ifndef EV8_CORE_PHYSICAL_STORAGE_HH
#define EV8_CORE_PHYSICAL_STORAGE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/index_functions.hh"

namespace ev8
{

class MetricRegistry; // obs/metrics.hh

/** Wordlines per bank. */
constexpr unsigned kEv8Wordlines = 64;

/** Prediction-array columns (8-bit words per wordline) per table. */
constexpr unsigned
ev8PredColumns(TableId table)
{
    return table == BIM ? 8 : 32;
}

/** Hysteresis-array columns per table: half size for G0 and Meta. */
constexpr unsigned
ev8HystColumns(TableId table)
{
    switch (table) {
      case BIM: return 8;
      case G0: return 16;
      case G1: return 32;
      case META: return 16;
      default: return 0;
    }
}

/**
 * Bit-accurate model of the eight EV8 predictor memory arrays.
 *
 * Initial state is weakly not-taken everywhere: prediction bit 0,
 * hysteresis bit 1.
 */
class Ev8PhysicalStorage
{
  public:
    Ev8PhysicalStorage();

    /** Reads one full 8-bit prediction word (one array access). */
    uint8_t readPredWord(TableId table, const Ev8WordCoords &c) const;

    /** Reads/writes a single prediction bit. */
    bool readPredBit(TableId table, const Ev8WordCoords &c,
                     unsigned bitpos) const;
    void writePredBit(TableId table, const Ev8WordCoords &c,
                      unsigned bitpos, bool value);

    /**
     * Reads/writes a hysteresis bit. The column is internally reduced
     * to the hysteresis array's column count (dropping the index MSB),
     * which is where the sharing of Section 4.4 happens.
     */
    bool readHystBit(TableId table, const Ev8WordCoords &c,
                     unsigned bitpos) const;
    void writeHystBit(TableId table, const Ev8WordCoords &c,
                      unsigned bitpos, bool value);

    /** Total bits: 208 Kbits prediction + 144 Kbits hysteresis. */
    static constexpr uint64_t
    storageBits()
    {
        uint64_t bits = 0;
        for (unsigned t = 0; t < kNumTables; ++t) {
            const auto id = static_cast<TableId>(t);
            bits += uint64_t{4} * kEv8Wordlines * ev8PredColumns(id) * 8;
            bits += uint64_t{4} * kEv8Wordlines * ev8HystColumns(id) * 8;
        }
        return bits;
    }

    void reset();

    /** Per-table access tallies (one count per read/write call). */
    struct AccessStats
    {
        uint64_t predReads = 0;
        uint64_t predWrites = 0;
        uint64_t hystReads = 0;
        uint64_t hystWrites = 0;
    };

    const AccessStats &accessStats(TableId table) const
    {
        return access[table];
    }

    /**
     * Enables the per-access tallies below. Off by default: the arrays
     * sit on the prediction hot path, and the counters only matter when
     * publishMetrics() will be called.
     */
    void setTracking(bool on) { tracking = on; }

    /** Prediction-array reads that touched each wordline of @p table,
     *  summed over the four banks (aliasing-pressure fingerprint). */
    const std::array<uint64_t, kEv8Wordlines> &
    wordlineReads(TableId table) const
    {
        return wordlineReads_[table];
    }

    /**
     * Publishes counters "<prefix>.<table>.{pred_reads,pred_writes,
     * hyst_reads,hyst_writes}" and gauges
     * "<prefix>.<table>.wordline_{max,mean}_reads" (table in
     * {bim,g0,g1,meta}).
     */
    void publishMetrics(MetricRegistry &registry,
                        const std::string &prefix) const;

  private:
    size_t predBitIndex(TableId table, const Ev8WordCoords &c,
                        unsigned bitpos) const;
    size_t hystBitIndex(TableId table, const Ev8WordCoords &c,
                        unsigned bitpos) const;

    // One byte per bit: simple and fast enough for simulation.
    std::array<std::vector<uint8_t>, kNumTables> pred;
    std::array<std::vector<uint8_t>, kNumTables> hyst;

    // Access tallies; mutable because reads are logically const.
    bool tracking = false;
    mutable std::array<AccessStats, kNumTables> access{};
    mutable std::array<std::array<uint64_t, kEv8Wordlines>, kNumTables>
        wordlineReads_{};
};

/**
 * Checks the single-ported constraint: within one cycle (two fetch
 * blocks), no bank may be accessed twice. The bank-number computation
 * of Section 6.2 guarantees this by construction; the checker verifies
 * it dynamically in tests and the banking bench.
 */
class SinglePortChecker
{
  public:
    /** Starts a new cycle (two fetch-block slots). */
    void
    beginCycle()
    {
        accessed.fill(false);
    }

    /**
     * Registers an access to @p bank. Returns false if the bank was
     * already accessed this cycle (a port conflict).
     */
    bool
    access(unsigned bank)
    {
        if (accessed[bank & 0x3])
            return false;
        accessed[bank & 0x3] = true;
        return true;
    }

  private:
    std::array<bool, 4> accessed{};
};

} // namespace ev8

#endif // EV8_CORE_PHYSICAL_STORAGE_HH
