#include "trace/trace.hh"

#include <unordered_set>

namespace ev8
{

const char *
branchTypeName(BranchType type)
{
    switch (type) {
      case BranchType::Conditional: return "cond";
      case BranchType::Unconditional: return "uncond";
      case BranchType::Call: return "call";
      case BranchType::Return: return "return";
      case BranchType::Indirect: return "indirect";
    }
    return "?";
}

uint64_t
Trace::instructionCount() const
{
    uint64_t count = 0;
    uint64_t flow_pc = startPc_;
    for (const auto &rec : records_) {
        // Sequential instructions from flow_pc up to and including the CTI.
        count += (rec.pc - flow_pc) / kInstrBytes + 1;
        flow_pc = rec.nextPc();
    }
    return count;
}

TraceStats
Trace::stats() const
{
    TraceStats s;
    std::unordered_set<uint64_t> static_pcs;
    uint64_t flow_pc = startPc_;
    for (const auto &rec : records_) {
        s.instructions += (rec.pc - flow_pc) / kInstrBytes + 1;
        flow_pc = rec.nextPc();
        ++s.dynamicBranches;
        if (rec.isConditional()) {
            ++s.dynamicCondBranches;
            if (rec.taken)
                ++s.takenCondBranches;
            static_pcs.insert(rec.pc);
        }
    }
    s.staticCondBranches = static_pcs.size();
    return s;
}

bool
Trace::isWellFormed() const
{
    uint64_t flow_pc = startPc_;
    if (startPc_ % kInstrBytes != 0)
        return false;
    for (const auto &rec : records_) {
        if (rec.pc % kInstrBytes != 0 || rec.target % kInstrBytes != 0)
            return false;
        if (rec.pc < flow_pc)
            return false;
        if (!rec.isConditional() && !rec.taken)
            return false;
        flow_pc = rec.nextPc();
    }
    return true;
}

} // namespace ev8
