#include "trace/trace_io.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "trace/varint.hh"

namespace ev8
{

namespace
{

constexpr char kMagic[4] = {'E', 'V', '8', 'T'};
constexpr uint32_t kVersion = 1;

} // namespace

void
writeTrace(std::ostream &out, const Trace &trace)
{
    out.write(kMagic, sizeof(kMagic));
    putU32(out, kVersion);
    putU32(out, static_cast<uint32_t>(trace.name().size()));
    out.write(trace.name().data(),
              static_cast<std::streamsize>(trace.name().size()));
    putVarint(out, trace.startPc() / kInstrBytes);
    putVarint(out, trace.size());

    uint64_t flow_pc = trace.startPc();
    for (const auto &rec : trace.records()) {
        const uint8_t flags = static_cast<uint8_t>(rec.type)
            | (rec.taken ? 0x08 : 0x00);
        out.put(static_cast<char>(flags));
        putVarint(out, (rec.pc - flow_pc) / kInstrBytes);
        putVarint(out, zigzag(
            (static_cast<int64_t>(rec.target)
             - static_cast<int64_t>(rec.pc)) / 4));
        flow_pc = rec.nextPc();
    }
    if (!out)
        throw TraceIoError("write failure");
}

Trace
readTrace(std::istream &in)
{
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::char_traits<char>::compare(magic, kMagic, 4) != 0)
        throw TraceIoError("bad magic");
    const uint32_t version = getU32(in);
    if (version != kVersion)
        throw TraceIoError("unsupported trace version");

    const uint32_t name_len = getU32(in);
    if (name_len > (1u << 20))
        throw TraceIoError("implausible name length");
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in)
        throw TraceIoError("truncated name");

    const uint64_t start_pc = getVarint(in) * kInstrBytes;
    const uint64_t count = getVarint(in);

    Trace trace(std::move(name), start_pc);
    // The count is untrusted input: cap the up-front reservation (a
    // lying header fails at the first missing record, after bounded
    // memory use, instead of triggering a giant allocation here).
    trace.records().reserve(
        static_cast<size_t>(std::min<uint64_t>(count, 1u << 20)));

    uint64_t flow_pc = start_pc;
    for (uint64_t i = 0; i < count; ++i) {
        const int flags = in.get();
        if (flags == std::char_traits<char>::eof())
            throw TraceIoError("truncated record");
        if ((flags & 0x07) > static_cast<int>(BranchType::Indirect))
            throw TraceIoError("bad branch type");

        BranchRecord rec;
        rec.type = static_cast<BranchType>(flags & 0x07);
        rec.taken = (flags & 0x08) != 0;
        rec.pc = flow_pc + getVarint(in) * kInstrBytes;
        rec.target = static_cast<uint64_t>(
            static_cast<int64_t>(rec.pc) + unzigzag(getVarint(in)) * 4);
        flow_pc = rec.nextPc();
        trace.append(rec);
    }
    return trace;
}

void
writeTraceFile(const std::string &path, const Trace &trace)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw TraceIoError("cannot open for writing: " + path);
    writeTrace(out, trace);
    out.flush();
    if (!out)
        throw TraceIoError("write failure: " + path);
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw TraceIoError("cannot open: " + path);
    return readTrace(in);
}

} // namespace ev8
