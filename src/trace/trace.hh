/**
 * @file
 * In-memory branch trace plus derived statistics.
 */

#ifndef EV8_TRACE_TRACE_HH
#define EV8_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/branch_record.hh"

namespace ev8
{

/**
 * Aggregate statistics of a trace; the columns of the paper's Table 2.
 */
struct TraceStats
{
    uint64_t dynamicCondBranches = 0;  //!< dynamic conditional branches
    uint64_t staticCondBranches = 0;   //!< distinct conditional branch PCs
    uint64_t dynamicBranches = 0;      //!< all dynamic CTIs
    uint64_t instructions = 0;         //!< total instructions represented
    uint64_t takenCondBranches = 0;    //!< taken conditional branches

    /** Fraction of conditional branches that were taken. */
    double
    takenRate() const
    {
        return dynamicCondBranches == 0
            ? 0.0
            : static_cast<double>(takenCondBranches)
                  / static_cast<double>(dynamicCondBranches);
    }
};

/**
 * An executable's dynamic control-transfer stream. The trace alone fully
 * determines the instruction-by-instruction PC sequence (see
 * branch_record.hh), which is what the fetch-block builder consumes.
 */
class Trace
{
  public:
    Trace() = default;

    /** Creates a named trace starting execution at @p start_pc. */
    Trace(std::string name, uint64_t start_pc)
        : name_(std::move(name)), startPc_(start_pc)
    {}

    /**
     * Appends a record. The record's PC must be reachable by sequential
     * execution from the previous record's successor (checked in debug
     * builds via isWellFormed()).
     */
    void append(const BranchRecord &record) { records_.push_back(record); }

    const std::vector<BranchRecord> &records() const { return records_; }
    std::vector<BranchRecord> &records() { return records_; }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }
    uint64_t startPc() const { return startPc_; }
    void setStartPc(uint64_t pc) { startPc_ = pc; }
    size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    /**
     * Total instructions the trace represents: every sequential run
     * between CTIs plus the CTIs themselves.
     */
    uint64_t instructionCount() const;

    /** Computes the Table 2 style statistics of this trace. */
    TraceStats stats() const;

    /**
     * Validates internal consistency: each record's PC is >= the flow
     * PC left by its predecessor, on the same 4-byte grid, and targets
     * are 4-byte aligned.
     */
    bool isWellFormed() const;

  private:
    std::string name_;
    uint64_t startPc_ = 0;
    std::vector<BranchRecord> records_;
};

} // namespace ev8

#endif // EV8_TRACE_TRACE_HH
