/**
 * @file
 * LEB128 varint / zigzag stream helpers shared by the binary trace and
 * block-stream serializers. All multi-byte integers in those formats go
 * through these, so the encodings cannot drift apart.
 */

#ifndef EV8_TRACE_VARINT_HH
#define EV8_TRACE_VARINT_HH

#include <cstdint>
#include <istream>
#include <ostream>

#include "trace/trace_io.hh"

namespace ev8
{

inline void
putVarint(std::ostream &out, uint64_t value)
{
    while (value >= 0x80) {
        out.put(static_cast<char>((value & 0x7f) | 0x80));
        value >>= 7;
    }
    out.put(static_cast<char>(value));
}

inline uint64_t
getVarint(std::istream &in)
{
    uint64_t value = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        const int c = in.get();
        if (c == std::char_traits<char>::eof())
            throw TraceIoError("truncated varint");
        value |= static_cast<uint64_t>(c & 0x7f) << shift;
        if (!(c & 0x80))
            return value;
    }
    throw TraceIoError("varint too long");
}

inline uint64_t
zigzag(int64_t value)
{
    return (static_cast<uint64_t>(value) << 1)
        ^ static_cast<uint64_t>(value >> 63);
}

inline int64_t
unzigzag(uint64_t value)
{
    return static_cast<int64_t>(value >> 1)
        ^ -static_cast<int64_t>(value & 1);
}

inline void
putU32(std::ostream &out, uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out.put(static_cast<char>((value >> (8 * i)) & 0xff));
}

inline uint32_t
getU32(std::istream &in)
{
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
        const int c = in.get();
        if (c == std::char_traits<char>::eof())
            throw TraceIoError("truncated header");
        value |= static_cast<uint32_t>(c & 0xff) << (8 * i);
    }
    return value;
}

} // namespace ev8

#endif // EV8_TRACE_VARINT_HH
