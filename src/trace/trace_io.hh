/**
 * @file
 * Compact binary serialization of branch traces.
 *
 * Our stand-in for the paper's Atom trace files (Section 8.1.2). The
 * format is delta/varint encoded: PCs of successive CTIs are close
 * together, so the common record costs a handful of bytes instead of 17.
 *
 * Layout:
 *   magic   "EV8T"            (4 bytes)
 *   version u32 little-endian (currently 1)
 *   namelen u32  + name bytes
 *   startPc varint
 *   count   varint
 *   records:
 *     flags  u8   (bits 0-2 type, bit 3 taken)
 *     pcDelta   varint  (pc - previous flow pc, in instruction units)
 *     tgtDelta  zigzag varint (target - pc, in instruction units)
 */

#ifndef EV8_TRACE_TRACE_IO_HH
#define EV8_TRACE_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "trace/trace.hh"

namespace ev8
{

/** Error raised on malformed or truncated trace files. */
class TraceIoError : public std::runtime_error
{
  public:
    explicit TraceIoError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Serializes @p trace to a stream. Throws TraceIoError on I/O failure. */
void writeTrace(std::ostream &out, const Trace &trace);

/** Serializes @p trace to @p path. */
void writeTraceFile(const std::string &path, const Trace &trace);

/** Parses a trace from a stream. Throws TraceIoError on malformed input. */
Trace readTrace(std::istream &in);

/** Parses a trace from @p path. */
Trace readTraceFile(const std::string &path);

} // namespace ev8

#endif // EV8_TRACE_TRACE_IO_HH
