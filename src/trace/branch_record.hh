/**
 * @file
 * The unit of a branch trace: one dynamic control-transfer instruction.
 *
 * This plays the role of the paper's Atom-collected SPECINT95 traces
 * (Section 8.1.2): a stream of control transfers from which the fetch
 * pipeline, histories, and predictor inputs are reconstructed. Ordinary
 * (non-CTI) instructions are implicit: between two consecutive records
 * the PC advances sequentially in 4-byte steps from the previous record's
 * successor address, so instruction counts are derivable without storing
 * every instruction.
 */

#ifndef EV8_TRACE_BRANCH_RECORD_HH
#define EV8_TRACE_BRANCH_RECORD_HH

#include <cstdint>

namespace ev8
{

/** Instruction bytes on Alpha; all PCs are multiples of this. */
constexpr uint64_t kInstrBytes = 4;

/** Classification of a control-transfer instruction. */
enum class BranchType : uint8_t
{
    Conditional,    //!< conditional direct branch (the predicted kind)
    Unconditional,  //!< always-taken direct branch / jump
    Call,           //!< subroutine call (pushes return address)
    Return,         //!< subroutine return (pops return address)
    Indirect,       //!< computed jump through a register
};

/** Human-readable name of a branch type. */
const char *branchTypeName(BranchType type);

/**
 * One dynamic control-transfer instruction.
 */
struct BranchRecord
{
    uint64_t pc = 0;      //!< address of the CTI itself
    uint64_t target = 0;  //!< destination if taken
    BranchType type = BranchType::Conditional;
    bool taken = false;   //!< actual outcome (always true for non-cond.)

    /** True for the conditional branches the predictor must predict. */
    bool isConditional() const { return type == BranchType::Conditional; }

    /** Address of the instruction executed after this one. */
    uint64_t
    nextPc() const
    {
        return taken ? target : pc + kInstrBytes;
    }

    bool operator==(const BranchRecord &) const = default;
};

} // namespace ev8

#endif // EV8_TRACE_BRANCH_RECORD_HH
