/**
 * @file
 * The common conditional-branch-predictor interface.
 *
 * Every prediction scheme in the repository -- the baselines of Fig. 5,
 * the generic 2Bc-gskew, and the constrained EV8 predictor -- implements
 * this interface and is driven by the trace simulator in
 * src/sim/simulator.hh with the paper's immediate-update methodology
 * (Section 8.1.1).
 */

#ifndef EV8_PREDICTORS_PREDICTOR_HH
#define EV8_PREDICTORS_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/history.hh"

namespace ev8
{

class MetricRegistry; // obs/metrics.hh; only implementations need it

/**
 * Component votes of a predictor's most recent predict() call, for the
 * misprediction event trace. Schemes without vote structure (bimodal,
 * gshare, perceptron, ...) leave valid false; the 2Bc-gskew family fills
 * the per-table fields.
 */
struct VoteSnapshot
{
    bool valid = false;
    bool bim = false;
    bool g0 = false;
    bool g1 = false;
    bool meta = false;     //!< chooser selected the e-gskew majority
    bool majority = false; //!< the e-gskew majority vote
};

/**
 * Everything a predictor may look at when predicting one conditional
 * branch. The simulator fills it in; which fields a scheme consumes is
 * the scheme's business (a bimodal reads only pc; the EV8 predictor
 * reads blockAddr, hist.indexHist and the path fields).
 */
struct BranchSnapshot
{
    uint64_t pc = 0;        //!< address of the conditional branch
    uint64_t blockAddr = 0; //!< address of its fetch block
    HistoryView hist;       //!< history registers at lookup time
    uint8_t bank = 0;       //!< EV8 bank number assigned to the block
};

/**
 * Abstract conditional branch predictor.
 *
 * Contract: the simulator calls predict() and then update() for the
 * same dynamic branch, in order, with no interleaving (immediate
 * update). Implementations may therefore cache lookup state from the
 * last predict() call and reuse it in update().
 */
class ConditionalBranchPredictor
{
  public:
    virtual ~ConditionalBranchPredictor() = default;

    /** Predicts the direction of the branch described by @p snap. */
    virtual bool predict(const BranchSnapshot &snap) = 0;

    /**
     * Trains on the resolved outcome. @p predicted_taken is the value
     * predict() returned for this branch (some update policies depend
     * on whether the overall prediction was correct).
     */
    virtual void update(const BranchSnapshot &snap, bool taken,
                        bool predicted_taken) = 0;

    /** Total memorization cost in bits, as the paper accounts it. */
    virtual uint64_t storageBits() const = 0;

    /** Scheme name with its configuration, e.g. "gshare-1M". */
    virtual std::string name() const = 0;

    /** Returns all tables to their initial state (weakly not-taken). */
    virtual void reset() = 0;

    /**
     * Votes of the most recent predict() call, for event tracing.
     * Base implementation: no vote structure to expose.
     */
    virtual VoteSnapshot
    lastVotes() const
    {
        return {};
    }

    /**
     * Publishes the scheme's internal tallies (per-bank conflicts,
     * agreement rates, array accesses, ...) into @p registry under
     * metric names starting with @p prefix (e.g. "pred.2Bc-gskew-512K").
     * Counters accumulate across calls, so a suite run publishing once
     * per benchmark yields suite-wide totals. Base: publishes nothing.
     */
    virtual void
    publishMetrics(MetricRegistry &registry, const std::string &prefix) const
    {
        (void)registry;
        (void)prefix;
    }

    /**
     * Turns per-branch internal bookkeeping (vote tallies, array-access
     * counters) on or off. Off by default so uninstrumented simulations
     * pay nothing; the harness enables it before runs that will call
     * publishMetrics(). Implementations with per-component state
     * override to forward the flag.
     */
    virtual void
    enableStats(bool on)
    {
        statsEnabled_ = on;
    }

    bool statsEnabled() const { return statsEnabled_; }

  private:
    bool statsEnabled_ = false;
};

using PredictorPtr = std::unique_ptr<ConditionalBranchPredictor>;

/** Formats a bit count the way the paper does ("352 Kbits"). */
std::string formatKbits(uint64_t bits);

} // namespace ev8

#endif // EV8_PREDICTORS_PREDICTOR_HH
