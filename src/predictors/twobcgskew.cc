#include "predictors/twobcgskew.hh"

#include <cassert>

#include "common/bits.hh"
#include "predictors/skew.hh"

namespace ev8
{

TwoBcGskewConfig
TwoBcGskewConfig::symmetric(unsigned log2_entries, unsigned h_bim,
                            unsigned h_g0, unsigned h_meta, unsigned h_g1,
                            const std::string &label)
{
    TwoBcGskewConfig cfg;
    cfg.tables[BIM] = {log2_entries, log2_entries, h_bim};
    cfg.tables[G0] = {log2_entries, log2_entries, h_g0};
    cfg.tables[G1] = {log2_entries, log2_entries, h_g1};
    cfg.tables[META] = {log2_entries, log2_entries, h_meta};
    cfg.label = label;
    return cfg;
}

TwoBcGskewConfig
TwoBcGskewConfig::ev8Size()
{
    TwoBcGskewConfig cfg;
    cfg.tables[BIM] = {14, 14, 4};   // 16K / 16K, history 4
    cfg.tables[G0] = {16, 15, 13};   // 64K / 32K, history 13
    cfg.tables[G1] = {16, 16, 21};   // 64K / 64K, history 21
    cfg.tables[META] = {16, 15, 15}; // 64K / 32K, history 15
    cfg.usePathInfo = true;          // the EV8 information vector
    cfg.label = "2Bc-gskew-EV8size";
    return cfg;
}

uint64_t
TwoBcGskewConfig::storageBits() const
{
    uint64_t bits = 0;
    for (const auto &t : tables)
        bits += (uint64_t{1} << t.log2Pred) + (uint64_t{1} << t.log2Hyst);
    return bits;
}

TwoBcGskewPredictor::TwoBcGskewPredictor(const TwoBcGskewConfig &config)
    : cfg(config)
{
    for (unsigned t = 0; t < kNumTables; ++t) {
        banksStorage[t] =
            SplitCounterArray(size_t{1} << cfg.tables[t].log2Pred,
                              size_t{1} << cfg.tables[t].log2Hyst);
    }
}

size_t
TwoBcGskewPredictor::tableIndex(TableId table,
                                const BranchSnapshot &snap) const
{
    const TableGeometry &geo = cfg.tables[table];
    uint64_t addr = snap.pc;
    if (cfg.usePathInfo) {
        if (table == BIM) {
            // Mirror the EV8's light touch of path on BIM: only the
            // previous block's (z6, z5) bits (Section 7.4).
            addr ^= ((snap.hist.pathZ >> 5) & 0x3) << 5;
        } else {
            // Fold the addresses of the three previous fetch blocks
            // into the hashed information vector (Section 5.2).
            const uint64_t pathword =
                ((snap.hist.pathZ >> 2) & 0xfff)
                ^ rotl((snap.hist.pathY >> 2) & 0xfff, 4, 24)
                ^ rotl((snap.hist.pathX >> 2) & 0xfff, 8, 24);
            addr ^= pathword << 2;
        }
    }
    if (table == BIM && geo.histLen == 0)
        return static_cast<size_t>(addressIndex(addr, geo.log2Pred));
    // Distinct skewing functions per table (the family of [17]); the
    // table id selects the bijection pair.
    return static_cast<size_t>(skewIndex(table, addr,
                                         snap.hist.indexHist, geo.histLen,
                                         geo.log2Pred));
}

GskewLookup
TwoBcGskewPredictor::lookup(const BranchSnapshot &snap) const
{
    GskewLookup look;
    for (unsigned t = 0; t < kNumTables; ++t)
        look.idx[t] = tableIndex(static_cast<TableId>(t), snap);
    const BankFacade facade{
        const_cast<std::array<SplitCounterArray, kNumTables> &>(
            banksStorage)};
    computeGskewVotes(facade, look);
    return look;
}

bool
TwoBcGskewPredictor::predict(const BranchSnapshot &snap)
{
    last = lookup(snap);
    return last.overall;
}

void
TwoBcGskewPredictor::update(const BranchSnapshot &snap, bool taken, bool)
{
    // Immediate-update contract: `last` was filled by predict() on this
    // same branch.
    assert(last.idx[BIM] == tableIndex(BIM, snap));
    (void)snap;
    if (statsEnabled())
        stats.note(last, taken);
    BankFacade facade{banksStorage};
    if (cfg.partialUpdate)
        gskewPartialUpdate(facade, last, taken);
    else
        gskewTotalUpdate(facade, last, taken);
}

uint64_t
TwoBcGskewPredictor::storageBits() const
{
    return cfg.storageBits();
}

std::string
TwoBcGskewPredictor::name() const
{
    if (!cfg.label.empty())
        return cfg.label;
    return "2Bc-gskew";
}

VoteSnapshot
TwoBcGskewPredictor::lastVotes() const
{
    VoteSnapshot v;
    v.valid = true;
    v.bim = last.bimPred;
    v.g0 = last.g0Pred;
    v.g1 = last.g1Pred;
    v.meta = last.metaPred;
    v.majority = last.majority;
    return v;
}

void
TwoBcGskewPredictor::publishMetrics(MetricRegistry &registry,
                                    const std::string &prefix) const
{
    publishGskewVoteStats(registry, prefix, stats);
}

void
TwoBcGskewPredictor::reset()
{
    for (auto &bank : banksStorage)
        bank.reset();
    stats = GskewVoteStats{};
}

} // namespace ev8
