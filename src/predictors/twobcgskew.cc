#include "predictors/twobcgskew.hh"

#include <cassert>

#include "common/bits.hh"
#include "predictors/skew.hh"

namespace ev8
{

TwoBcGskewConfig
TwoBcGskewConfig::symmetric(unsigned log2_entries, unsigned h_bim,
                            unsigned h_g0, unsigned h_meta, unsigned h_g1,
                            const std::string &label)
{
    TwoBcGskewConfig cfg;
    cfg.tables[BIM] = {log2_entries, log2_entries, h_bim};
    cfg.tables[G0] = {log2_entries, log2_entries, h_g0};
    cfg.tables[G1] = {log2_entries, log2_entries, h_g1};
    cfg.tables[META] = {log2_entries, log2_entries, h_meta};
    cfg.label = label;
    return cfg;
}

TwoBcGskewConfig
TwoBcGskewConfig::ev8Size()
{
    TwoBcGskewConfig cfg;
    cfg.tables[BIM] = {14, 14, 4};   // 16K / 16K, history 4
    cfg.tables[G0] = {16, 15, 13};   // 64K / 32K, history 13
    cfg.tables[G1] = {16, 16, 21};   // 64K / 64K, history 21
    cfg.tables[META] = {16, 15, 15}; // 64K / 32K, history 15
    cfg.usePathInfo = true;          // the EV8 information vector
    cfg.label = "2Bc-gskew-EV8size";
    return cfg;
}

uint64_t
TwoBcGskewConfig::storageBits() const
{
    uint64_t bits = 0;
    for (const auto &t : tables)
        bits += (uint64_t{1} << t.log2Pred) + (uint64_t{1} << t.log2Hyst);
    return bits;
}

TwoBcGskewPredictor::TwoBcGskewPredictor(const TwoBcGskewConfig &config)
    : cfg(config)
{
    for (unsigned t = 0; t < kNumTables; ++t) {
        banksStorage[t] =
            SplitCounterArray(size_t{1} << cfg.tables[t].log2Pred,
                              size_t{1} << cfg.tables[t].log2Hyst);
    }
}

uint64_t
TwoBcGskewPredictor::bimPathFold(const HistoryView &hist)
{
    // Mirror the EV8's light touch of path on BIM: only the previous
    // block's (z6, z5) bits (Section 7.4).
    return ((hist.pathZ >> 5) & 0x3) << 5;
}

uint64_t
TwoBcGskewPredictor::gskewPathFold(const HistoryView &hist)
{
    // Fold the addresses of the three previous fetch blocks into the
    // hashed information vector (Section 5.2).
    const uint64_t pathword = ((hist.pathZ >> 2) & 0xfff)
        ^ rotl((hist.pathY >> 2) & 0xfff, 4, 24)
        ^ rotl((hist.pathX >> 2) & 0xfff, 8, 24);
    return pathword << 2;
}

size_t
TwoBcGskewPredictor::foldedIndex(TableId table, const BranchSnapshot &snap,
                                 uint64_t fold) const
{
    const TableGeometry &geo = cfg.tables[table];
    const uint64_t addr = snap.pc ^ fold;
    if (table == BIM && geo.histLen == 0)
        return static_cast<size_t>(addressIndex(addr, geo.log2Pred));
    // Distinct skewing functions per table (the family of [17]); the
    // table id selects the bijection pair.
    return static_cast<size_t>(skewIndex(table, addr,
                                         snap.hist.indexHist, geo.histLen,
                                         geo.log2Pred));
}

size_t
TwoBcGskewPredictor::tableIndex(TableId table,
                                const BranchSnapshot &snap) const
{
    uint64_t fold = 0;
    if (cfg.usePathInfo)
        fold = table == BIM ? bimPathFold(snap.hist)
                            : gskewPathFold(snap.hist);
    return foldedIndex(table, snap, fold);
}

GskewLookup
TwoBcGskewPredictor::lookup(const BranchSnapshot &snap)
{
    uint64_t bim_fold = 0, gskew_fold = 0;
    if (cfg.usePathInfo) {
        if (snap.hist.pathZ != cachedPathZ
            || snap.hist.pathY != cachedPathY
            || snap.hist.pathX != cachedPathX) {
            cachedPathZ = snap.hist.pathZ;
            cachedPathY = snap.hist.pathY;
            cachedPathX = snap.hist.pathX;
            cachedBimFold = bimPathFold(snap.hist);
            cachedGskewFold = gskewPathFold(snap.hist);
        }
        bim_fold = cachedBimFold;
        gskew_fold = cachedGskewFold;
    }

    GskewLookup look;
    look.idx[BIM] = foldedIndex(BIM, snap, bim_fold);
    look.idx[G0] = foldedIndex(G0, snap, gskew_fold);
    look.idx[G1] = foldedIndex(G1, snap, gskew_fold);
    look.idx[META] = foldedIndex(META, snap, gskew_fold);
    const ConstBankFacade facade{banksStorage};
    computeGskewVotes(facade, look);
    return look;
}

bool
TwoBcGskewPredictor::predict(const BranchSnapshot &snap)
{
    last = lookup(snap);
#ifndef NDEBUG
    lastPc = snap.pc;
    lastIndexHist = snap.hist.indexHist;
#endif
    return last.overall;
}

void
TwoBcGskewPredictor::update(const BranchSnapshot &snap, bool taken, bool)
{
    // Immediate-update contract: `last` was filled by predict() on this
    // same branch. Comparing the stored lookup inputs is O(1), unlike
    // the full index recompute this assert used to pay for.
    assert(snap.pc == lastPc && snap.hist.indexHist == lastIndexHist);
    (void)snap;
    if (statsEnabled())
        stats.note(last, taken);
    BankFacade facade{banksStorage};
    if (cfg.partialUpdate)
        gskewPartialUpdate(facade, last, taken);
    else
        gskewTotalUpdate(facade, last, taken);
}

uint64_t
TwoBcGskewPredictor::storageBits() const
{
    return cfg.storageBits();
}

std::string
TwoBcGskewPredictor::name() const
{
    if (!cfg.label.empty())
        return cfg.label;
    return "2Bc-gskew";
}

VoteSnapshot
TwoBcGskewPredictor::lastVotes() const
{
    VoteSnapshot v;
    v.valid = true;
    v.bim = last.bimPred;
    v.g0 = last.g0Pred;
    v.g1 = last.g1Pred;
    v.meta = last.metaPred;
    v.majority = last.majority;
    return v;
}

void
TwoBcGskewPredictor::publishMetrics(MetricRegistry &registry,
                                    const std::string &prefix) const
{
    publishGskewVoteStats(registry, prefix, stats);
}

void
TwoBcGskewPredictor::reset()
{
    for (auto &bank : banksStorage)
        bank.reset();
    stats = GskewVoteStats{};
}

} // namespace ev8
