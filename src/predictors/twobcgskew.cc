#include "predictors/twobcgskew.hh"

#include <cassert>

#include "common/bits.hh"
#include "predictors/skew.hh"

namespace ev8
{

TwoBcGskewConfig
TwoBcGskewConfig::symmetric(unsigned log2_entries, unsigned h_bim,
                            unsigned h_g0, unsigned h_meta, unsigned h_g1,
                            const std::string &label)
{
    TwoBcGskewConfig cfg;
    cfg.tables[BIM] = {log2_entries, log2_entries, h_bim};
    cfg.tables[G0] = {log2_entries, log2_entries, h_g0};
    cfg.tables[G1] = {log2_entries, log2_entries, h_g1};
    cfg.tables[META] = {log2_entries, log2_entries, h_meta};
    cfg.label = label;
    return cfg;
}

TwoBcGskewConfig
TwoBcGskewConfig::ev8Size()
{
    TwoBcGskewConfig cfg;
    cfg.tables[BIM] = {14, 14, 4};   // 16K / 16K, history 4
    cfg.tables[G0] = {16, 15, 13};   // 64K / 32K, history 13
    cfg.tables[G1] = {16, 16, 21};   // 64K / 64K, history 21
    cfg.tables[META] = {16, 15, 15}; // 64K / 32K, history 15
    cfg.usePathInfo = true;          // the EV8 information vector
    cfg.label = "2Bc-gskew-EV8size";
    return cfg;
}

uint64_t
TwoBcGskewConfig::storageBits() const
{
    uint64_t bits = 0;
    for (const auto &t : tables)
        bits += (uint64_t{1} << t.log2Pred) + (uint64_t{1} << t.log2Hyst);
    return bits;
}

TwoBcGskewPredictor::TwoBcGskewPredictor(const TwoBcGskewConfig &config)
    : cfg(config)
{
    for (unsigned t = 0; t < kNumTables; ++t) {
        banksStorage[t] =
            SplitCounterArray(size_t{1} << cfg.tables[t].log2Pred,
                              size_t{1} << cfg.tables[t].log2Hyst);
    }
}

uint64_t
TwoBcGskewPredictor::bimPathFold(const HistoryView &hist)
{
    // Mirror the EV8's light touch of path on BIM: only the previous
    // block's (z6, z5) bits (Section 7.4).
    return ((hist.pathZ >> 5) & 0x3) << 5;
}

uint64_t
TwoBcGskewPredictor::gskewPathFold(const HistoryView &hist)
{
    // Fold the addresses of the three previous fetch blocks into the
    // hashed information vector (Section 5.2).
    const uint64_t pathword = ((hist.pathZ >> 2) & 0xfff)
        ^ rotl((hist.pathY >> 2) & 0xfff, 4, 24)
        ^ rotl((hist.pathX >> 2) & 0xfff, 8, 24);
    return pathword << 2;
}

size_t
TwoBcGskewPredictor::foldedIndex(TableId table, const BranchSnapshot &snap,
                                 uint64_t fold) const
{
    const TableGeometry &geo = cfg.tables[table];
    const uint64_t addr = snap.pc ^ fold;
    if (table == BIM && geo.histLen == 0)
        return static_cast<size_t>(addressIndex(addr, geo.log2Pred));
    // Distinct skewing functions per table (the family of [17]); the
    // table id selects the bijection pair.
    return static_cast<size_t>(skewIndex(table, addr,
                                         snap.hist.indexHist, geo.histLen,
                                         geo.log2Pred));
}

size_t
TwoBcGskewPredictor::tableIndex(TableId table,
                                const BranchSnapshot &snap) const
{
    uint64_t fold = 0;
    if (cfg.usePathInfo)
        fold = table == BIM ? bimPathFold(snap.hist)
                            : gskewPathFold(snap.hist);
    return foldedIndex(table, snap, fold);
}

GskewLookup
TwoBcGskewPredictor::lookup(const BranchSnapshot &snap)
{
    uint64_t bim_fold = 0, gskew_fold = 0;
    if (cfg.usePathInfo) {
        if (snap.hist.pathZ != cachedPathZ
            || snap.hist.pathY != cachedPathY
            || snap.hist.pathX != cachedPathX) {
            cachedPathZ = snap.hist.pathZ;
            cachedPathY = snap.hist.pathY;
            cachedPathX = snap.hist.pathX;
            cachedBimFold = bimPathFold(snap.hist);
            cachedGskewFold = gskewPathFold(snap.hist);
        }
        bim_fold = cachedBimFold;
        gskew_fold = cachedGskewFold;
    }

    GskewLookup look;
    look.idx[BIM] = foldedIndex(BIM, snap, bim_fold);
    look.idx[G0] = foldedIndex(G0, snap, gskew_fold);
    look.idx[G1] = foldedIndex(G1, snap, gskew_fold);
    look.idx[META] = foldedIndex(META, snap, gskew_fold);
    const ConstBankFacade facade{banksStorage};
    computeGskewVotes(facade, look);
    return look;
}

bool
TwoBcGskewPredictor::predict(const BranchSnapshot &snap)
{
    last = lookup(snap);
#ifndef NDEBUG
    lastPc = snap.pc;
    lastIndexHist = snap.hist.indexHist;
#endif
    return last.overall;
}

void
TwoBcGskewPredictor::update(const BranchSnapshot &snap, bool taken, bool)
{
    // Immediate-update contract: `last` was filled by predict() on this
    // same branch. Comparing the stored lookup inputs is O(1), unlike
    // the full index recompute this assert used to pay for.
    assert(snap.pc == lastPc && snap.hist.indexHist == lastIndexHist);
    (void)snap;
    if (statsEnabled())
        stats.note(last, taken);
    BankFacade facade{banksStorage};
    if (cfg.partialUpdate)
        gskewPartialUpdate(facade, last, taken);
    else
        gskewTotalUpdate(facade, last, taken);
}

bool
TwoBcGskewPredictor::predictAndUpdate(const BranchSnapshot &snap,
                                      bool taken)
{
    last = lookup(snap);
#ifndef NDEBUG
    lastPc = snap.pc;
    lastIndexHist = snap.hist.indexHist;
#endif
    if (statsEnabled())
        stats.note(last, taken);
    BankFacade facade{banksStorage};
    if (cfg.partialUpdate)
        gskewPartialUpdate(facade, last, taken);
    else
        gskewTotalUpdate(facade, last, taken);
    return last.overall;
}

TwoBcGskewPredictor::FusedGroup::FusedGroup(
    TwoBcGskewPredictor *const *preds, size_t nlanes)
{
    lanes_.assign(preds, preds + nlanes);
    statsOn_.resize(nlanes);
    laneAddr_.resize(nlanes);
    laneHist_.resize(nlanes);
    for (size_t l = 0; l < nlanes; ++l) {
        TwoBcGskewPredictor &p = *lanes_[l];
        statsOn_[l] = p.statsEnabled() ? 1 : 0;
        anyPathInfo_ |= p.cfg.usePathInfo;
        for (unsigned t = 0; t < kNumTables; ++t) {
            const TableGeometry &geo = p.cfg.tables[t];
            // The same bounds skewIndex()/addressIndex() require.
            assert(geo.log2Pred >= 1 && geo.log2Pred < 64);
            assert(geo.log2Pred >= 2 || (t == BIM && geo.histLen == 0));
            assert(geo.histLen <= 63);
            const uint8_t fold_kind = !p.cfg.usePathInfo ? 0
                                      : t == BIM         ? 1
                                                         : 2;
            laneAddr_[l][t] =
                addrSlot(static_cast<uint8_t>(t), fold_kind,
                         static_cast<uint8_t>(geo.log2Pred));
            laneHist_[l][t] =
                histSlot(static_cast<uint8_t>(t),
                         static_cast<uint8_t>(geo.log2Pred),
                         static_cast<uint8_t>(geo.histLen));
        }
    }
    backend_ = simd::activeBackend();
    if (backend_ != simd::Backend::Off)
        buildVectorState();
}

void
TwoBcGskewPredictor::FusedGroup::buildVectorState()
{
    constexpr size_t kW = simd::U64x4::kLanes;
    const auto pad = [](size_t n) { return (n + kW - 1) & ~(kW - 1); };
    const uint64_t ones = ~uint64_t{0};

    // Address slots. Padding slots get n = 63 so their fold loop
    // terminates in one round, a zero mask so they contribute nothing,
    // and zero chain masks so the H rounds leave them alone.
    paddedAddr_ = pad(addrSlots_.size());
    aN_.assign(paddedAddr_, 63);
    aNm1_.assign(paddedAddr_, 62);
    aMask_.assign(paddedAddr_, 0);
    aSelBim_.assign(paddedAddr_, 0);
    aSelGskew_.assign(paddedAddr_, 0);
    aVal_.assign(paddedAddr_, 0);
    for (auto &c : aChain_)
        c.assign(paddedAddr_, 0);
    for (size_t i = 0; i < addrSlots_.size(); ++i) {
        const AddrSlot &s = addrSlots_[i];
        aN_[i] = s.n;
        aNm1_[i] = s.n - 1u;
        aMask_[i] = mask(s.n);
        aSelBim_[i] = s.foldKind == 1 ? ones : 0;
        aSelGskew_[i] = s.foldKind == 2 ? ones : 0;
        for (unsigned c = 0; c < aChain_.size(); ++c)
            aChain_[c][i] = s.table > c ? ones : 0;
    }

    // History slots likewise. A len == 0 slot keeps its zero history
    // mask, so the uniform vector arithmetic reproduces the scalar
    // "constant 0" skip; its n may be 1 (BIM), making n - 2 wrap, but
    // its chain masks are zero and srlv() zeroes counts >= 64, so the
    // wrapped shift is computed and discarded, never observed.
    paddedHist_ = pad(histSlots_.size());
    hN_.assign(paddedHist_, 63);
    hNm1_.assign(paddedHist_, 62);
    hNm2_.assign(paddedHist_, 61);
    hMask_.assign(paddedHist_, 0);
    hLenMask_.assign(paddedHist_, 0);
    hVal_.assign(paddedHist_, 0);
    for (auto &c : hChain_)
        c.assign(paddedHist_, 0);
    for (size_t i = 0; i < histSlots_.size(); ++i) {
        const HistSlot &s = histSlots_[i];
        hN_[i] = s.n;
        hNm1_[i] = s.n - 1u;
        hNm2_[i] = s.n >= 2 ? s.n - 2u : 64;
        hMask_[i] = mask(s.n);
        hLenMask_[i] = s.len == 0 ? 0 : mask(s.len);
        for (unsigned c = 0; c < hChain_.size(); ++c)
            hChain_[c][i] = s.table > c ? ones : 0;
    }

    // Per-lane staging. Padding lanes alias lane 0: their composed
    // indices and word gathers read live memory harmlessly, and the
    // scalar update pass only walks real lanes, so nothing is ever
    // written through them.
    paddedLanes_ = pad(lanes_.size());
    laneAddr_.resize(paddedLanes_, laneAddr_[0]);
    laneHist_.resize(paddedLanes_, laneHist_[0]);
    for (unsigned t = 0; t < kNumTables; ++t) {
        lanePredBase_[t].resize(paddedLanes_);
        laneHystBase_[t].resize(paddedLanes_);
        laneHystMask_[t].resize(paddedLanes_);
        idxS_[t].resize(paddedLanes_);
        for (size_t l = 0; l < paddedLanes_; ++l) {
            const size_t src = l < lanes_.size() ? l : 0;
            SplitCounterArray &bank = lanes_[src]->banksStorage[t];
            lanePredBase_[t][l] =
                reinterpret_cast<uintptr_t>(bank.predWords());
            laneHystBase_[t][l] =
                reinterpret_cast<uintptr_t>(bank.hystWords());
            laneHystMask_[t][l] = bank.hystSize() - 1;
        }
    }
    lanePartial_.resize(paddedLanes_);
    for (size_t l = 0; l < paddedLanes_; ++l) {
        const size_t src = l < lanes_.size() ? l : 0;
        lanePartial_[l] = lanes_[src]->cfg.partialUpdate ? 1 : 0;
    }
    anyStats_ = false;
    for (size_t l = 0; l < lanes_.size(); ++l)
        anyStats_ |= statsOn_[l] != 0;
    ovrS_.resize(paddedLanes_);
    if (anyStats_) {
        for (unsigned k = 0; k < 3; ++k) {
            accConf_[k].assign(paddedLanes_, 0);
            accAgree_[k].assign(paddedLanes_, 0);
        }
        accUnan_.assign(paddedLanes_, 0);
        accMetaSel_.assign(paddedLanes_, 0);
        accMisp_.assign(paddedLanes_, 0);
    }
}

TwoBcGskewPredictor::FusedGroup::~FusedGroup()
{
    // accSteps_ only advances in the vector steppers; after scalar
    // stepping (or an unobserved walk) everything here is zero.
    if (accSteps_ == 0)
        return;
    for (size_t l = 0; l < lanes_.size(); ++l) {
        if (!statsOn_[l])
            continue;
        GskewVoteStats &st = lanes_[l]->stats;
        st.updates += accSteps_;
        for (unsigned k = 0; k < 3; ++k) {
            GskewVoteStats::PerBank &bk = st.bank[k];
            bk.lookups += accSteps_;
            bk.conflicts += accConf_[k][l];
            bk.agree += accAgree_[k][l];
        }
        // META's "selected component" is by definition the overall
        // prediction, so its conflict count is the mispredict count.
        GskewVoteStats::PerBank &bm = st.bank[META];
        bm.lookups += accSteps_;
        bm.conflicts += accMisp_[l];
        bm.agree += accSteps_ - accMisp_[l];
        st.unanimous += accUnan_[l];
        st.metaSelectsGskew += accMetaSel_[l];
        st.mispredicts += accMisp_[l];
    }
}

void
TwoBcGskewPredictor::FusedGroup::step(const BranchSnapshot &snap,
                                      bool taken, uint64_t *misp)
{
    if (backend_ == simd::Backend::Off)
        stepScalar(snap, taken, misp);
    else if (backend_ == simd::Backend::Avx2)
        stepVecAvx2(snap, taken, misp);
    else
        stepVecScalar(snap, taken, misp);
}

uint16_t
TwoBcGskewPredictor::FusedGroup::addrSlot(uint8_t table, uint8_t fold_kind,
                                          uint8_t n)
{
    for (size_t i = 0; i < addrSlots_.size(); ++i) {
        const AddrSlot &s = addrSlots_[i];
        if (s.table == table && s.foldKind == fold_kind && s.n == n)
            return static_cast<uint16_t>(i);
    }
    addrSlots_.push_back({table, fold_kind, n, 0});
    return static_cast<uint16_t>(addrSlots_.size() - 1);
}

uint16_t
TwoBcGskewPredictor::FusedGroup::histSlot(uint8_t table, uint8_t n,
                                          uint8_t len)
{
    for (size_t i = 0; i < histSlots_.size(); ++i) {
        const HistSlot &s = histSlots_[i];
        if (s.table == table && s.n == n && s.len == len)
            return static_cast<uint16_t>(i);
    }
    histSlots_.push_back({table, n, len, 0});
    return static_cast<uint16_t>(histSlots_.size() - 1);
}

void
TwoBcGskewPredictor::FusedGroup::stepScalar(const BranchSnapshot &snap,
                                            bool taken, uint64_t *misp)
{
    if (anyPathInfo_
        && (snap.hist.pathZ != pathZ_ || snap.hist.pathY != pathY_
            || snap.hist.pathX != pathX_)) {
        pathZ_ = snap.hist.pathZ;
        pathY_ = snap.hist.pathY;
        pathX_ = snap.hist.pathX;
        bimFold_ = bimPathFold(snap.hist);
        gskewFold_ = gskewPathFold(snap.hist);
    }

    // Address-side terms: one XOR-fold plus H^table chain per distinct
    // slot, shared by every lane that subscripts it. The fold and H
    // loops are written out longhand: this is the innermost arithmetic
    // of a sweep, and in unoptimized builds the helper-call round trips
    // cost more than the arithmetic itself.
    for (AddrSlot &s : addrSlots_) {
        const uint64_t fold = s.foldKind == 0
                                  ? 0
                                  : (s.foldKind == 1 ? bimFold_
                                                     : gskewFold_);
        const unsigned n = s.n;
        const uint64_t m = mask(n);
        uint64_t v = (snap.pc ^ fold) >> 2;
        uint64_t x = 0;
        while (v) {
            x ^= v & m;
            v >>= n;
        }
        for (unsigned i = 0; i < s.table; ++i) {
            const uint64_t fb = (x ^ (x >> (n - 1))) & 1;
            x = (x >> 1) | (fb << (n - 1));
        }
        s.value = x;
    }

    // History-side terms likewise, per distinct (table, width, length):
    // the masked history folded to n bits through the inverse chain
    // H'^table. In a history sweep these stay per-length, but the
    // address side above has already collapsed to one term per table.
    for (HistSlot &s : histSlots_) {
        if (s.len == 0)
            continue; // the address-only degenerate slot: constant 0
        const unsigned n = s.n;
        const uint64_t m = mask(n);
        uint64_t v = snap.hist.indexHist & mask(s.len);
        uint64_t x = 0;
        while (v) {
            x ^= v & m;
            v >>= n;
        }
        for (unsigned i = 0; i < s.table; ++i) {
            const uint64_t top = (x >> (n - 1)) & 1;
            const uint64_t vtop = (x >> (n - 2)) & 1;
            x = ((x << 1) & m) | (top ^ vtop);
        }
        s.value = x;
    }

    // Per-lane remainder: assemble the four indices from the shared
    // terms, then vote, note and train exactly as predictAndUpdate().
    for (size_t l = 0; l < lanes_.size(); ++l) {
        TwoBcGskewPredictor &p = *lanes_[l];
        const std::array<uint16_t, kNumTables> &as = laneAddr_[l];
        const std::array<uint16_t, kNumTables> &hs = laneHist_[l];
        // Filled in place: p.last is exactly the state predictAndUpdate
        // would cache, and the in-place fill saves a per-lane copy.
        GskewLookup &look = p.last;
        look.idx[BIM] = static_cast<size_t>(
            addrSlots_[as[BIM]].value ^ histSlots_[hs[BIM]].value);
        look.idx[G0] = static_cast<size_t>(
            addrSlots_[as[G0]].value ^ histSlots_[hs[G0]].value);
        look.idx[G1] = static_cast<size_t>(
            addrSlots_[as[G1]].value ^ histSlots_[hs[G1]].value);
        look.idx[META] = static_cast<size_t>(
            addrSlots_[as[META]].value ^ histSlots_[hs[META]].value);
        // computeGskewVotes() with the bank reads devirtualized: the
        // facade indirection costs a call frame per read here, in the
        // innermost loop of every fused sweep.
        look.bimPred = p.banksStorage[BIM].taken(look.idx[BIM]);
        look.g0Pred = p.banksStorage[G0].taken(look.idx[G0]);
        look.g1Pred = p.banksStorage[G1].taken(look.idx[G1]);
        look.metaPred = p.banksStorage[META].taken(look.idx[META]);
        look.majority = (static_cast<int>(look.bimPred) + look.g0Pred
                         + look.g1Pred) >= 2;
        look.overall = look.metaPred ? look.majority : look.bimPred;
#ifndef NDEBUG
        p.lastPc = snap.pc;
        p.lastIndexHist = snap.hist.indexHist;
#endif
        if (statsOn_[l])
            p.stats.note(look, taken);
        BankFacade facade{p.banksStorage};
        if (p.cfg.partialUpdate)
            gskewPartialUpdate(facade, look, taken);
        else
            gskewTotalUpdate(facade, look, taken);
        misp[l] += look.overall != taken;
    }
}

uint64_t
TwoBcGskewPredictor::storageBits() const
{
    return cfg.storageBits();
}

std::string
TwoBcGskewPredictor::name() const
{
    if (!cfg.label.empty())
        return cfg.label;
    return "2Bc-gskew";
}

VoteSnapshot
TwoBcGskewPredictor::lastVotes() const
{
    VoteSnapshot v;
    v.valid = true;
    v.bim = last.bimPred;
    v.g0 = last.g0Pred;
    v.g1 = last.g1Pred;
    v.meta = last.metaPred;
    v.majority = last.majority;
    return v;
}

void
TwoBcGskewPredictor::publishMetrics(MetricRegistry &registry,
                                    const std::string &prefix) const
{
    publishGskewVoteStats(registry, prefix, stats);
}

void
TwoBcGskewPredictor::reset()
{
    for (auto &bank : banksStorage)
        bank.reset();
    stats = GskewVoteStats{};
}

} // namespace ev8
