/**
 * @file
 * The YAGS predictor of Eden & Mudge [4]: a PC-indexed bimodal choice
 * table backed by two small *partially tagged* direction caches that
 * store only the exceptions to the bias. When the choice table says
 * taken, the not-taken cache is searched (and vice versa); a tag hit
 * overrides the bias.
 *
 * Fig. 5 of the paper evaluates 288 Kbit and 576 Kbit YAGS
 * configurations with 6-bit tags, and notes the implementation obstacle
 * that kept it out of the EV8: reading and checking 16 tags in 1.5
 * cycles.
 */

#ifndef EV8_PREDICTORS_YAGS_HH
#define EV8_PREDICTORS_YAGS_HH

#include <cstdint>
#include <vector>

#include "predictors/predictor.hh"
#include "predictors/tables.hh"

namespace ev8
{

class YagsPredictor final : public ConditionalBranchPredictor
{
  public:
    /**
     * @param log2_choice entries in the bimodal choice table
     * @param log2_cache entries in each direction cache
     * @param history_length history bits in the cache index
     * @param tag_bits partial tag width (the paper uses 6)
     */
    YagsPredictor(unsigned log2_choice, unsigned log2_cache,
                  unsigned history_length, unsigned tag_bits = 6);

    bool predict(const BranchSnapshot &snap) override;
    void update(const BranchSnapshot &snap, bool taken,
                bool predicted_taken) override;

    /**
     * Fused predict-and-train step for the multi-lane kernel: the
     * choice-table read, cache index and tag probe serve both the
     * prediction and the training decision, instead of being recomputed
     * by a predict(); update() pair. Identical transitions.
     */
    bool predictAndUpdate(const BranchSnapshot &snap, bool taken);

    uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

  private:
    struct CacheEntry
    {
        uint16_t tag = 0;
        uint8_t counter = 1; //!< 2-bit direction counter
        bool valid = false;
    };

    using Cache = std::vector<CacheEntry>;

    size_t cacheIndex(const BranchSnapshot &snap) const;
    uint16_t tagOf(uint64_t pc) const;

    unsigned log2Choice;
    unsigned log2Cache;
    unsigned histLen;
    unsigned tagBits;
    TwoBitCounterTable choice;
    Cache takenCache;    //!< exceptions to a not-taken bias
    Cache notTakenCache; //!< exceptions to a taken bias
};

} // namespace ev8

#endif // EV8_PREDICTORS_YAGS_HH
