#include "predictors/agree.hh"

#include "common/bits.hh"

namespace ev8
{

AgreePredictor::AgreePredictor(unsigned log2_entries,
                               unsigned history_length,
                               unsigned log2_bias_entries)
    : log2Entries(log2_entries), histLen(history_length),
      log2BiasEntries(log2_bias_entries),
      agreeTable(size_t{1} << log2_entries),
      bias(size_t{1} << log2_bias_entries, -1)
{
}

size_t
AgreePredictor::agreeIndex(const BranchSnapshot &snap) const
{
    const uint64_t h = snap.hist.indexHist & mask(histLen);
    const uint64_t folded = histLen == 0 ? 0 : xorFold(h, log2Entries);
    return static_cast<size_t>(((snap.pc >> 2) ^ folded)
                               & mask(log2Entries));
}

size_t
AgreePredictor::biasIndex(uint64_t pc) const
{
    return static_cast<size_t>((pc >> 2) & mask(log2BiasEntries));
}

bool
AgreePredictor::predict(const BranchSnapshot &snap)
{
    const int8_t b = bias[biasIndex(snap.pc)];
    // Unset bias: fall back to not-taken (it will be set on update).
    const bool bias_taken = b == 1;
    const bool agrees = agreeTable.taken(agreeIndex(snap));
    return agrees ? bias_taken : !bias_taken;
}

void
AgreePredictor::update(const BranchSnapshot &snap, bool taken, bool)
{
    int8_t &b = bias[biasIndex(snap.pc)];
    if (b < 0)
        b = taken ? 1 : 0; // first-execution bias setting
    const bool bias_taken = b == 1;
    agreeTable.update(agreeIndex(snap), taken == bias_taken);
}

uint64_t
AgreePredictor::storageBits() const
{
    // 2-bit agree counters plus one bias bit per bias entry (the
    // "unset" state rides along with the BTB valid bit in hardware).
    return agreeTable.storageBits() + bias.size();
}

std::string
AgreePredictor::name() const
{
    return "agree-" + std::to_string(size_t{1} << log2Entries) + "-h"
        + std::to_string(histLen);
}

void
AgreePredictor::reset()
{
    agreeTable.reset();
    bias.assign(bias.size(), -1);
}

} // namespace ev8
