/**
 * @file
 * The agree predictor of Sprangle et al. [22]: converts destructive
 * aliasing into (mostly) constructive aliasing by predicting whether a
 * branch *agrees* with a per-branch bias bit, rather than its direction.
 * Branches aliasing onto the same agree counter usually both agree with
 * their biases, so they reinforce instead of fighting.
 *
 * The bias bit is established on a branch's first dynamic execution
 * (the hardware attaches it to the BTB/I-cache line; we model a
 * direct-mapped bias table).
 */

#ifndef EV8_PREDICTORS_AGREE_HH
#define EV8_PREDICTORS_AGREE_HH

#include <vector>

#include "predictors/predictor.hh"
#include "predictors/tables.hh"

namespace ev8
{

class AgreePredictor : public ConditionalBranchPredictor
{
  public:
    /**
     * @param log2_entries agree-table entries (2-bit counters)
     * @param history_length global history bits (gshare-style index)
     * @param log2_bias_entries bias-bit table entries
     */
    AgreePredictor(unsigned log2_entries, unsigned history_length,
                   unsigned log2_bias_entries);

    bool predict(const BranchSnapshot &snap) override;
    void update(const BranchSnapshot &snap, bool taken,
                bool predicted_taken) override;
    uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

  private:
    size_t agreeIndex(const BranchSnapshot &snap) const;
    size_t biasIndex(uint64_t pc) const;

    unsigned log2Entries;
    unsigned histLen;
    unsigned log2BiasEntries;
    TwoBitCounterTable agreeTable;
    std::vector<int8_t> bias; //!< -1 unset, 0 NT-biased, 1 T-biased
};

} // namespace ev8

#endif // EV8_PREDICTORS_AGREE_HH
