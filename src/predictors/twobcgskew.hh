/**
 * @file
 * The hybrid skewed branch predictor 2Bc-gskew (Seznec & Michaud [19]),
 * in its unconstrained "academic" form: the reference design the EV8
 * predictor is derived from, and the configuration vehicle for most of
 * the paper's evaluation (Figs. 5, 6, 8, 10).
 *
 * Four banks of 2-bit counters (Section 4.1):
 *   BIM  -- bimodal, address-indexed; also the third e-gskew bank;
 *   G0   -- e-gskew bank, skew-indexed with a medium history;
 *   G1   -- e-gskew bank, skew-indexed with a longer history;
 *   Meta -- metapredictor choosing BIM vs. the e-gskew majority vote.
 *
 * The three design degrees of freedom the paper exploits are all
 * configurable here: per-table history lengths (Section 4.5), per-table
 * prediction sizes (Section 4.6), and hysteresis arrays smaller than
 * prediction arrays (Sections 4.3-4.4).
 */

#ifndef EV8_PREDICTORS_TWOBCGSKEW_HH
#define EV8_PREDICTORS_TWOBCGSKEW_HH

#include <array>
#include <string>
#include <vector>

#include "common/simd.hh"
#include "predictors/gskew_policy.hh"
#include "predictors/predictor.hh"
#include "predictors/tables.hh"

namespace ev8
{

/** Per-table geometry and history length. */
struct TableGeometry
{
    unsigned log2Pred = 0;  //!< log2 of prediction entries
    unsigned log2Hyst = 0;  //!< log2 of hysteresis entries (<= log2Pred)
    unsigned histLen = 0;   //!< history bits consumed by the index
};

/** Full 2Bc-gskew configuration. */
struct TwoBcGskewConfig
{
    std::array<TableGeometry, kNumTables> tables{};
    bool partialUpdate = true; //!< Section 4.2 policy (vs. total update)

    /**
     * Hash the last-three-fetch-block path registers (hist.pathZ/Y/X)
     * into the indices, alongside the history. Off for the paper's
     * conventional-ghist experiments (Figs. 5/6/10); on for the EV8
     * information vector (Section 5.2), where path information from the
     * three blocks missing from the aged lghist recovers most of the
     * aging loss -- this is the "complete hash" reference of Fig. 9.
     */
    bool usePathInfo = false;

    std::string label;         //!< short name for reports

    /**
     * Four equal banks of 2^log2_entries counters, full-size hysteresis:
     * the "academic" baseline of Fig. 5 (e.g. 4*64K entries = 512 Kbits).
     * History lengths are given per table: BIM conventionally 0, medium
     * G0, medium Meta, long G1.
     */
    static TwoBcGskewConfig symmetric(unsigned log2_entries,
                                      unsigned h_bim, unsigned h_g0,
                                      unsigned h_meta, unsigned h_g1,
                                      const std::string &label);

    /**
     * The EV8-budget logical configuration of Table 1 (352 Kbits total):
     * BIM 16K/16K h4, G0 64K/32K h13, G1 64K/64K h21, Meta 64K/32K h15.
     * (This is the *logical* predictor; hardware index-function
     * constraints live in src/core.)
     */
    static TwoBcGskewConfig ev8Size();

    /** Total memorization bits. */
    uint64_t storageBits() const;
};

/**
 * The working predictor. Indexing uses the skewed-cache hash family of
 * [17] over the full (address, history) information vector -- the
 * "complete hash" reference of Fig. 9. The history consumed is
 * hist.indexHist, so the same class serves conventional-ghist and
 * lghist experiments; the simulator decides what that register holds.
 */
class TwoBcGskewPredictor final : public ConditionalBranchPredictor
{
  public:
    explicit TwoBcGskewPredictor(const TwoBcGskewConfig &config);

    bool predict(const BranchSnapshot &snap) override;
    void update(const BranchSnapshot &snap, bool taken,
                bool predicted_taken) override;

    /**
     * Fused predict-and-train step for the multi-lane kernel: one
     * lookup() serves both the returned prediction and the update
     * policy, without round-tripping through the cached `last` state
     * across two virtual calls. Identical table transitions to a
     * predict(); update() pair for the same branch.
     */
    bool predictAndUpdate(const BranchSnapshot &snap, bool taken);

    uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;
    VoteSnapshot lastVotes() const override;
    void publishMetrics(MetricRegistry &registry,
                        const std::string &prefix) const override;

    const TwoBcGskewConfig &config() const { return cfg; }

    /** Accumulated per-bank vote/conflict tallies. */
    const GskewVoteStats &voteStats() const { return stats; }

    /** Per-table index for a snapshot (exposed for tests). */
    size_t tableIndex(TableId table, const BranchSnapshot &snap) const;

    /**
     * Shared-index group stepper for the fused kernel: one instance
     * drives every 2Bc-gskew lane of a fused job through one branch at
     * a time. All lanes of a group see the same BranchSnapshot, and the
     * address-side half of every skewed index -- the XOR-fold of
     * (pc ^ path-fold) and its H^table chain -- depends only on that
     * shared snapshot and the table geometry, never on per-lane state.
     * The group therefore computes each distinct (table, fold kind,
     * index width) term once per branch and each distinct (table,
     * width, history length) history term once per branch, instead of
     * once per lane; in a history sweep the address side collapses from
     * 4*nlanes computations to 4. Table transitions, cached lookup
     * state and statistics are exactly those of per-lane
     * predictAndUpdate().
     */
    class FusedGroup
    {
      public:
        FusedGroup(TwoBcGskewPredictor *const *preds, size_t nlanes);

        // The vector staging below holds absolute pointers into this
        // object's own slot-value arrays; copying would silently alias
        // the source. The kernel constructs the group in place
        // (guaranteed copy elision), so no copy or move is needed.
        FusedGroup(const FusedGroup &) = delete;
        FusedGroup &operator=(const FusedGroup &) = delete;

        //! Flushes the vector steppers' per-walk vote-stat
        //! accumulators into the lanes' GskewVoteStats (a no-op after
        //! scalar stepping, which notes per step).
        ~FusedGroup();

        /** Advances every lane over one branch; tallies into misp[l]. */
        void step(const BranchSnapshot &snap, bool taken, uint64_t *misp);

      private:
        /** One distinct address-side index term H^table(fold(addr)). */
        struct AddrSlot
        {
            uint8_t table;    //!< H-chain length (the bank's bijection)
            uint8_t foldKind; //!< 0 = none, 1 = BIM path, 2 = gskew path
            uint8_t n;        //!< index width in bits
            uint64_t value;   //!< recomputed every step()
        };

        /** One distinct history-side index term H'^table(fold(hist)). */
        struct HistSlot
        {
            uint8_t table; //!< H'-chain length
            uint8_t n;     //!< index width in bits
            uint8_t len;   //!< history bits consumed (0 = constant 0)
            uint64_t value;
        };

        uint16_t addrSlot(uint8_t table, uint8_t fold_kind, uint8_t n);
        uint16_t histSlot(uint8_t table, uint8_t n, uint8_t len);

        /** The pre-vector per-lane stepper; EV8_SIMD=0 keeps it hot. */
        void stepScalar(const BranchSnapshot &snap, bool taken,
                        uint64_t *misp);

        /**
         * The vector stepper, templated over a simd.hh vector type.
         * Defined in fused_vec.hh; instantiated only by the two
         * backend translation units (fused_vec_scalar.cc and, with
         * -mavx2, fused_vec_avx2.cc), which expose it through the two
         * out-of-line entry points below so no intrinsic code leaks
         * into TUs built without -mavx2.
         */
        template <class Vec>
        void stepVec(const BranchSnapshot &snap, bool taken,
                     uint64_t *misp);
        void stepVecScalar(const BranchSnapshot &snap, bool taken,
                           uint64_t *misp);
        void stepVecAvx2(const BranchSnapshot &snap, bool taken,
                         uint64_t *misp);

        /** Builds the padded SoA staging the vector stepper consumes. */
        void buildVectorState();

        std::vector<TwoBcGskewPredictor *> lanes_;
        std::vector<uint8_t> statsOn_;
        std::vector<AddrSlot> addrSlots_;
        std::vector<HistSlot> histSlots_;
        //! Per lane, per table: subscripts into the two slot tables.
        std::vector<std::array<uint16_t, kNumTables>> laneAddr_;
        std::vector<std::array<uint16_t, kNumTables>> laneHist_;

        //! Group-level path-fold cache, mirroring lookup()'s: the path
        //! registers move once per fetch block, and they are shared by
        //! the whole group.
        bool anyPathInfo_ = false;
        uint64_t pathZ_ = 0, pathY_ = 0, pathX_ = 0;
        uint64_t bimFold_ = 0, gskewFold_ = 0;

        //! Per-walk backend choice (EV8_SIMD / cpuid), made once in
        //! the constructor so in-process env overrides take effect.
        simd::Backend backend_ = simd::Backend::Off;

        // ---- vector-path SoA staging (built when backend_ != Off),
        // every array padded to a multiple of the vector width. The
        // address-side slot constants (index width n, its chain
        // companions n-1, the n-bit mask, all-ones fold-select masks
        // per path-fold kind and per H-chain round) are splatted to
        // one uint64_t per slot so the per-branch fold and chain
        // loops run as unconditional masked vector arithmetic.
        size_t paddedAddr_ = 0, paddedHist_ = 0, paddedLanes_ = 0;
        std::vector<uint64_t> aN_, aNm1_, aMask_, aSelBim_, aSelGskew_;
        std::vector<uint64_t> aVal_;
        std::array<std::vector<uint64_t>, 3> aChain_;
        std::vector<uint64_t> hN_, hNm1_, hNm2_, hMask_, hLenMask_;
        std::vector<uint64_t> hVal_;
        std::array<std::vector<uint64_t>, 3> hChain_;
        //! Per table, per lane: bitplane base pointers and the
        //! hysteresis index mask (hystSize-1, Section 4.4 sharing).
        std::array<std::vector<uint64_t>, kNumTables> lanePredBase_;
        std::array<std::vector<uint64_t>, kNumTables> laneHystBase_;
        std::array<std::vector<uint64_t>, kNumTables> laneHystMask_;
        //! All-ones for partial-update lanes, 0 for total-update ones.
        std::vector<uint64_t> lanePartial_;
        //! Per-branch scratch: composed indices for the vote+update
        //! pass, and each lane's overall prediction for the mispredict
        //! tally.
        std::array<std::vector<uint64_t>, kNumTables> idxS_;
        std::vector<uint64_t> ovrS_;
        bool anyStats_ = false;

        //! Per-walk vote-stat accumulators for metrics-observed
        //! vector walks: every GskewVoteStats field is a sum of 0/1
        //! lane predicates the vote pass already holds in registers,
        //! so the vector steppers add them lane-wise per step and the
        //! destructor flushes totals once, instead of running the
        //! 20-odd scalar counter increments of note() per lane-step.
        uint64_t accSteps_ = 0;
        std::array<std::vector<uint64_t>, 3> accConf_, accAgree_;
        std::vector<uint64_t> accUnan_, accMetaSel_, accMisp_;
    };

    /** Direct bank access for white-box tests. */
    const SplitCounterArray &bank(TableId table) const
    {
        return banksStorage[table];
    }

  private:
    /** Adapter giving the shared policy its Banks interface. */
    struct BankFacade
    {
        std::array<SplitCounterArray, kNumTables> &arrays;

        bool
        taken(TableId t, size_t idx) const
        {
            return arrays[t].taken(idx);
        }
        void strengthen(TableId t, size_t idx) { arrays[t].strengthen(idx); }
        void update(TableId t, size_t idx, bool v)
        {
            arrays[t].update(idx, v);
        }
    };

    /** Read-only adapter for lookup(): the vote pass only reads. */
    struct ConstBankFacade
    {
        const std::array<SplitCounterArray, kNumTables> &arrays;

        bool
        taken(TableId t, size_t idx) const
        {
            return arrays[t].taken(idx);
        }
    };

    /** The per-block BIM path fold of tableIndex() (Section 7.4). */
    static uint64_t bimPathFold(const HistoryView &hist);

    /** The per-block gskew path fold of tableIndex() (Section 5.2). */
    static uint64_t gskewPathFold(const HistoryView &hist);

    /** tableIndex() with the path fold already computed. */
    size_t foldedIndex(TableId table, const BranchSnapshot &snap,
                       uint64_t fold) const;

    GskewLookup lookup(const BranchSnapshot &snap);

    TwoBcGskewConfig cfg;
    std::array<SplitCounterArray, kNumTables> banksStorage;
    GskewLookup last; //!< cached between predict() and update()
    GskewVoteStats stats;

    /**
     * The path registers only change once per fetch block, so the two
     * index folds derived from them are cached here and recomputed only
     * when the registers move -- every branch of a block shares them.
     * Initial values match all-zero path registers (fold 0).
     */
    uint64_t cachedPathZ = 0, cachedPathY = 0, cachedPathX = 0;
    uint64_t cachedBimFold = 0, cachedGskewFold = 0;

#ifndef NDEBUG
    uint64_t lastPc = 0;        //!< predict() inputs, for update()'s
    uint64_t lastIndexHist = 0; //!< immediate-update contract check
#endif
};

} // namespace ev8

#endif // EV8_PREDICTORS_TWOBCGSKEW_HH
