/**
 * @file
 * The bi-mode predictor of Lee, Chen & Mudge [13]: a PC-indexed choice
 * table steers each branch to one of two gshare-indexed direction
 * tables, one serving mostly-taken and one mostly-not-taken branch
 * substreams. Segregating by bias removes most destructive aliasing.
 *
 * Fig. 5 of the paper uses two 128K-entry direction tables with a
 * 16K-entry choice table (544 Kbits); it notes that for large
 * predictors a choice table smaller than the direction tables is the
 * cost-effective configuration, so the sizes are independent here.
 */

#ifndef EV8_PREDICTORS_BIMODE_HH
#define EV8_PREDICTORS_BIMODE_HH

#include "predictors/predictor.hh"
#include "predictors/tables.hh"

namespace ev8
{

class BimodePredictor final : public ConditionalBranchPredictor
{
  public:
    /**
     * @param log2_direction entries in each of the two direction tables
     * @param log2_choice entries in the PC-indexed choice table
     * @param history_length history bits in the direction index
     */
    BimodePredictor(unsigned log2_direction, unsigned log2_choice,
                    unsigned history_length);

    bool predict(const BranchSnapshot &snap) override;
    void update(const BranchSnapshot &snap, bool taken,
                bool predicted_taken) override;

    /**
     * Fused predict-and-train step for the multi-lane kernel: one
     * choice read and one direction index serve both halves, and the
     * selected direction counter is read and stepped in a single packed
     * word access. Identical transitions to predict(); update().
     */
    bool predictAndUpdate(const BranchSnapshot &snap, bool taken);

    uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

  private:
    size_t directionIndex(const BranchSnapshot &snap) const;
    size_t choiceIndex(uint64_t pc) const;

    unsigned log2Direction;
    unsigned log2Choice;
    unsigned histLen;
    TwoBitCounterTable takenTable;    //!< direction table, taken mode
    TwoBitCounterTable notTakenTable; //!< direction table, not-taken mode
    TwoBitCounterTable choice;
};

} // namespace ev8

#endif // EV8_PREDICTORS_BIMODE_HH
