/**
 * @file
 * Backup-predictor hierarchy -- the paper's Section 9 proposal: keep
 * the fast global-history predictor as the primary, and add a backup
 * predictor with a *different information vector* (e.g. a perceptron)
 * that targets the branches the primary gets wrong, arbitrated by a
 * chooser. (Timing-wise the backup would deliver later; accuracy-wise,
 * this class measures what the combination buys.)
 */

#ifndef EV8_PREDICTORS_HIERARCHY_HH
#define EV8_PREDICTORS_HIERARCHY_HH

#include <string>

#include "predictors/predictor.hh"
#include "predictors/tables.hh"

namespace ev8
{

class HierarchyPredictor : public ConditionalBranchPredictor
{
  public:
    /**
     * @param primary the fast first-level predictor (owns)
     * @param backup the slower backup predictor (owns)
     * @param log2_chooser chooser table entries (PC-indexed 2-bit:
     *        taken = trust the backup)
     */
    HierarchyPredictor(PredictorPtr primary, PredictorPtr backup,
                       unsigned log2_chooser, std::string label);

    bool predict(const BranchSnapshot &snap) override;
    void update(const BranchSnapshot &snap, bool taken,
                bool predicted_taken) override;
    uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    /** Fraction of predictions the chooser gave to the backup. */
    double backupUseRate() const;

  private:
    size_t chooserIndex(uint64_t pc) const;

    PredictorPtr primary;
    PredictorPtr backup;
    unsigned log2Chooser;
    TwoBitCounterTable chooser;
    std::string label;

    bool lastPrimary = false;
    bool lastBackup = false;
    uint64_t lookups = 0;
    uint64_t backupUsed = 0;
};

} // namespace ev8

#endif // EV8_PREDICTORS_HIERARCHY_HH
