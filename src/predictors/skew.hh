/**
 * @file
 * The inter-bank dispersing hash family used by skewed predictors.
 *
 * Section 8.1.1: "indexing functions from the family presented in
 * [17, 15] were used for all predictors" when experimenting with history
 * lengths wider than log2 of the table size. The family builds on an
 * invertible one-bit-feedback map H (and its inverse H') over n-bit
 * values; bank i of a skewed structure is indexed with
 *
 *     f_i(v1, v2) = H^i(v1) XOR H'^i(v2)
 *
 * where (v1, v2) are two n-bit slices of the (address, history)
 * information vector. The H^i being distinct bijections gives the
 * defining skewed-cache property: two vectors that conflict in one bank
 * are unlikely to conflict in another.
 */

#ifndef EV8_PREDICTORS_SKEW_HH
#define EV8_PREDICTORS_SKEW_HH

#include <cstdint>

namespace ev8
{

/**
 * Builds the two n-bit information slices from a branch/block address
 * and a global history of @p hist_len bits. The history occupies the
 * "v2" slice (folded when longer than n); the address, XOR-folded with
 * the overflowing history, forms "v1". This deliberately mixes a large
 * number of information bits into every index bit, the "complete hash"
 * reference point of Fig. 9.
 */
struct SkewSlices
{
    uint64_t v1;
    uint64_t v2;
};

SkewSlices makeSkewSlices(uint64_t addr, uint64_t hist, unsigned hist_len,
                          unsigned n);

/**
 * Index of bank @p table (0-based) into a 2^n-entry table for the given
 * information vector. Table 0 degenerates to v1 XOR v2.
 */
uint64_t skewIndex(unsigned table, uint64_t addr, uint64_t hist,
                   unsigned hist_len, unsigned n);

/**
 * Address-only index (the bimodal component of skewed hybrids): the
 * fetch-granular address bits folded to n.
 */
uint64_t addressIndex(uint64_t addr, unsigned n);

} // namespace ev8

#endif // EV8_PREDICTORS_SKEW_HH
