#include "predictors/yags.hh"

#include "common/bits.hh"

namespace ev8
{

YagsPredictor::YagsPredictor(unsigned log2_choice, unsigned log2_cache,
                             unsigned history_length, unsigned tag_bits)
    : log2Choice(log2_choice), log2Cache(log2_cache),
      histLen(history_length), tagBits(tag_bits),
      choice(size_t{1} << log2_choice),
      takenCache(size_t{1} << log2_cache),
      notTakenCache(size_t{1} << log2_cache)
{
}

size_t
YagsPredictor::cacheIndex(const BranchSnapshot &snap) const
{
    const uint64_t h = snap.hist.indexHist & mask(histLen);
    const uint64_t folded = histLen == 0 ? 0 : xorFold(h, log2Cache);
    return static_cast<size_t>(((snap.pc >> 2) ^ folded)
                               & mask(log2Cache));
}

uint16_t
YagsPredictor::tagOf(uint64_t pc) const
{
    return static_cast<uint16_t>((pc >> 2) & mask(tagBits));
}

bool
YagsPredictor::predict(const BranchSnapshot &snap)
{
    const bool bias_taken = choice.taken((snap.pc >> 2) & mask(log2Choice));
    const Cache &cache = bias_taken ? notTakenCache : takenCache;
    const CacheEntry &entry = cache[cacheIndex(snap)];
    if (entry.valid && entry.tag == tagOf(snap.pc))
        return entry.counter >= 2;
    return bias_taken;
}

void
YagsPredictor::update(const BranchSnapshot &snap, bool taken, bool)
{
    const size_t ci = (snap.pc >> 2) & mask(log2Choice);
    const bool bias_taken = choice.taken(ci);
    Cache &cache = bias_taken ? notTakenCache : takenCache;
    CacheEntry &entry = cache[cacheIndex(snap)];
    const bool hit = entry.valid && entry.tag == tagOf(snap.pc);

    if (hit) {
        // Train the exception entry toward the outcome.
        if (taken) {
            if (entry.counter < 3)
                ++entry.counter;
        } else {
            if (entry.counter > 0)
                --entry.counter;
        }
    } else if (taken != bias_taken) {
        // The bias mispredicted with no exception recorded: allocate.
        entry.valid = true;
        entry.tag = tagOf(snap.pc);
        entry.counter = taken ? 2 : 1; // weak state toward the outcome
    }

    // The choice table keeps tracking the branch's bias, but is not
    // degraded when the exception cache already covers the deviation.
    const bool cache_correct = hit && ((entry.counter >= 2) == taken);
    if (!(bias_taken != taken && cache_correct))
        choice.update(ci, taken);
}

bool
YagsPredictor::predictAndUpdate(const BranchSnapshot &snap, bool taken)
{
    const size_t ci = (snap.pc >> 2) & mask(log2Choice);
    const bool bias_taken = choice.taken(ci);
    Cache &cache = bias_taken ? notTakenCache : takenCache;
    CacheEntry &entry = cache[cacheIndex(snap)];
    const bool hit = entry.valid && entry.tag == tagOf(snap.pc);
    const bool predicted = hit ? entry.counter >= 2 : bias_taken;

    if (hit) {
        if (taken) {
            if (entry.counter < 3)
                ++entry.counter;
        } else {
            if (entry.counter > 0)
                --entry.counter;
        }
    } else if (taken != bias_taken) {
        entry.valid = true;
        entry.tag = tagOf(snap.pc);
        entry.counter = taken ? 2 : 1;
    }

    const bool cache_correct = hit && ((entry.counter >= 2) == taken);
    if (!(bias_taken != taken && cache_correct))
        choice.update(ci, taken);
    return predicted;
}

uint64_t
YagsPredictor::storageBits() const
{
    // Choice: 2 bits/entry. Caches: 2-bit counter + tag per entry (the
    // valid bit is an artifact of cold-start modelling, as in [4]).
    const uint64_t cache_bits =
        (uint64_t{2} << log2Cache) + (uint64_t(tagBits) << log2Cache);
    return choice.storageBits() + 2 * cache_bits;
}

std::string
YagsPredictor::name() const
{
    return "yags-" + std::to_string(size_t{1} << log2Choice) + "+2x"
        + std::to_string(size_t{1} << log2Cache) + "-h"
        + std::to_string(histLen);
}

void
YagsPredictor::reset()
{
    choice.reset();
    takenCache.assign(takenCache.size(), CacheEntry{});
    notTakenCache.assign(notTakenCache.size(), CacheEntry{});
}

} // namespace ev8
