#include "predictors/bimode.hh"

#include "common/bits.hh"

namespace ev8
{

BimodePredictor::BimodePredictor(unsigned log2_direction,
                                 unsigned log2_choice,
                                 unsigned history_length)
    : log2Direction(log2_direction), log2Choice(log2_choice),
      histLen(history_length),
      takenTable(size_t{1} << log2_direction),
      notTakenTable(size_t{1} << log2_direction),
      choice(size_t{1} << log2_choice)
{
}

size_t
BimodePredictor::directionIndex(const BranchSnapshot &snap) const
{
    const uint64_t h = snap.hist.indexHist & mask(histLen);
    const uint64_t folded = histLen == 0 ? 0 : xorFold(h, log2Direction);
    return static_cast<size_t>(((snap.pc >> 2) ^ folded)
                               & mask(log2Direction));
}

size_t
BimodePredictor::choiceIndex(uint64_t pc) const
{
    return static_cast<size_t>((pc >> 2) & mask(log2Choice));
}

bool
BimodePredictor::predict(const BranchSnapshot &snap)
{
    const bool choose_taken = choice.taken(choiceIndex(snap.pc));
    const size_t di = directionIndex(snap);
    return choose_taken ? takenTable.taken(di) : notTakenTable.taken(di);
}

void
BimodePredictor::update(const BranchSnapshot &snap, bool taken, bool)
{
    const size_t ci = choiceIndex(snap.pc);
    const size_t di = directionIndex(snap);
    const bool choose_taken = choice.taken(ci);
    TwoBitCounterTable &used = choose_taken ? takenTable : notTakenTable;
    const bool used_correct = used.taken(di) == taken;

    // Only the selected direction table trains; the other mode's
    // substream is left untouched (the whole point of the scheme).
    used.update(di, taken);

    // Choice trains toward the outcome, except when it would evict a
    // branch from a mode whose direction table is predicting it
    // correctly despite the "wrong" mode.
    if (!(choose_taken != taken && used_correct))
        choice.update(ci, taken);
}

bool
BimodePredictor::predictAndUpdate(const BranchSnapshot &snap, bool taken)
{
    const size_t ci = choiceIndex(snap.pc);
    const size_t di = directionIndex(snap);
    const bool choose_taken = choice.taken(ci);
    TwoBitCounterTable &used = choose_taken ? takenTable : notTakenTable;
    const bool predicted = used.readAndUpdate(di, taken);
    if (!(choose_taken != taken && predicted == taken))
        choice.update(ci, taken);
    return predicted;
}

uint64_t
BimodePredictor::storageBits() const
{
    return takenTable.storageBits() + notTakenTable.storageBits()
        + choice.storageBits();
}

std::string
BimodePredictor::name() const
{
    return "bimode-2x" + std::to_string(size_t{1} << log2Direction) + "+"
        + std::to_string(size_t{1} << log2Choice) + "-h"
        + std::to_string(histLen);
}

void
BimodePredictor::reset()
{
    takenTable.reset();
    notTakenTable.reset();
    choice.reset();
}

} // namespace ev8
