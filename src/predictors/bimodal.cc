#include "predictors/bimodal.hh"

#include "common/bits.hh"

namespace ev8
{

BimodalPredictor::BimodalPredictor(unsigned log2_entries)
    : log2Entries(log2_entries), table(size_t{1} << log2_entries)
{
}

size_t
BimodalPredictor::index(uint64_t pc) const
{
    return static_cast<size_t>((pc >> 2) & mask(log2Entries));
}

bool
BimodalPredictor::predict(const BranchSnapshot &snap)
{
    return table.taken(index(snap.pc));
}

void
BimodalPredictor::update(const BranchSnapshot &snap, bool taken, bool)
{
    table.update(index(snap.pc), taken);
}

uint64_t
BimodalPredictor::storageBits() const
{
    return table.storageBits();
}

std::string
BimodalPredictor::name() const
{
    return "bimodal-" + std::to_string(size_t{1} << log2Entries);
}

void
BimodalPredictor::reset()
{
    table.reset();
}

} // namespace ev8
