#include "predictors/bimodal.hh"

#include "common/bits.hh"

namespace ev8
{

BimodalPredictor::BimodalPredictor(unsigned log2_entries)
    : log2Entries(log2_entries), table(size_t{1} << log2_entries)
{
}

size_t
BimodalPredictor::index(uint64_t pc) const
{
    return static_cast<size_t>((pc >> 2) & mask(log2Entries));
}

bool
BimodalPredictor::predict(const BranchSnapshot &snap)
{
    return table.taken(index(snap.pc));
}

void
BimodalPredictor::update(const BranchSnapshot &snap, bool taken, bool)
{
    table.update(index(snap.pc), taken);
}

BimodalPredictor::FusedGroup::FusedGroup(BimodalPredictor *const *preds,
                                         size_t nlanes)
{
    lanes_.assign(preds, preds + nlanes);
    backend_ = simd::activeBackend();
    if (backend_ == simd::Backend::Off)
        return;
    constexpr size_t kW = simd::U64x4::kLanes;
    paddedLanes_ = (nlanes + kW - 1) & ~(kW - 1);
    idxMask_.resize(paddedLanes_);
    wordBase_.resize(paddedLanes_);
    for (size_t l = 0; l < paddedLanes_; ++l) {
        const BimodalPredictor &p = *lanes_[l < nlanes ? l : 0];
        idxMask_[l] = mask(p.log2Entries);
        wordBase_[l] =
            reinterpret_cast<uintptr_t>(p.table.wordsData());
    }
}

void
BimodalPredictor::FusedGroup::step(const BranchSnapshot &snap, bool taken,
                                   uint64_t *misp)
{
    if (backend_ == simd::Backend::Off) {
        // The per-lane two-phase step of the pre-vector fused kernel.
        for (size_t l = 0; l < lanes_.size(); ++l) {
            const size_t idx = lanes_[l]->laneIndex(snap);
            misp[l] += lanes_[l]->applyAt(idx, taken) != taken;
        }
    } else if (backend_ == simd::Backend::Avx2) {
        stepVecAvx2(snap, taken, misp);
    } else {
        stepVecScalar(snap, taken, misp);
    }
}

uint64_t
BimodalPredictor::storageBits() const
{
    return table.storageBits();
}

std::string
BimodalPredictor::name() const
{
    return "bimodal-" + std::to_string(size_t{1} << log2Entries);
}

void
BimodalPredictor::reset()
{
    table.reset();
}

} // namespace ev8
