/**
 * @file
 * Emulated-vector backend entry points: the fused_vec.hh steppers
 * instantiated on simd::U64x4. Compiled without any ISA flags, so
 * this backend runs (and can be byte-compared against AVX2) on every
 * machine; selected by EV8_SIMD=scalar.
 */

#include "predictors/fused_vec.hh"

namespace ev8
{

void
TwoBcGskewPredictor::FusedGroup::stepVecScalar(const BranchSnapshot &snap,
                                               bool taken, uint64_t *misp)
{
    stepVec<simd::U64x4>(snap, taken, misp);
}

void
GsharePredictor::FusedGroup::stepVecScalar(const BranchSnapshot &snap,
                                           bool taken, uint64_t *misp)
{
    stepVec<simd::U64x4>(snap, taken, misp);
}

void
BimodalPredictor::FusedGroup::stepVecScalar(const BranchSnapshot &snap,
                                            bool taken, uint64_t *misp)
{
    stepVec<simd::U64x4>(snap, taken, misp);
}

} // namespace ev8
