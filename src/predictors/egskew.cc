#include "predictors/egskew.hh"

#include "common/bits.hh"
#include "obs/metrics.hh"
#include "predictors/skew.hh"

namespace ev8
{

EgskewPredictor::EgskewPredictor(unsigned log2_entries,
                                 unsigned history_length,
                                 bool partial_update)
    : log2Entries(log2_entries), histLen(history_length),
      partialUpdate(partial_update),
      banks{TwoBitCounterTable(size_t{1} << log2_entries),
            TwoBitCounterTable(size_t{1} << log2_entries),
            TwoBitCounterTable(size_t{1} << log2_entries)}
{
}

void
EgskewPredictor::computeIndices(const BranchSnapshot &snap)
{
    // Bank 0 is the bimodal bank: address only.
    idx[0] = static_cast<size_t>(addressIndex(snap.pc, log2Entries));
    idx[1] = static_cast<size_t>(skewIndex(1, snap.pc,
                                           snap.hist.indexHist, histLen,
                                           log2Entries));
    idx[2] = static_cast<size_t>(skewIndex(2, snap.pc,
                                           snap.hist.indexHist, histLen,
                                           log2Entries));
    for (int b = 0; b < 3; ++b)
        vote[b] = banks[b].taken(idx[b]);
}

bool
EgskewPredictor::predict(const BranchSnapshot &snap)
{
    computeIndices(snap);
    return (static_cast<int>(vote[0]) + vote[1] + vote[2]) >= 2;
}

void
EgskewPredictor::update(const BranchSnapshot &snap, bool taken,
                        bool predicted_taken)
{
    computeIndices(snap);
    applyUpdate(taken, predicted_taken);
}

bool
EgskewPredictor::predictAndUpdate(const BranchSnapshot &snap, bool taken)
{
    computeIndices(snap);
    const bool predicted =
        (static_cast<int>(vote[0]) + vote[1] + vote[2]) >= 2;
    applyUpdate(taken, predicted);
    return predicted;
}

void
EgskewPredictor::applyUpdate(bool taken, bool predicted_taken)
{
    if (statsEnabled()) {
        for (int b = 0; b < 3; ++b) {
            ++tallies[b].lookups;
            if (vote[b] != taken)
                ++tallies[b].conflicts;
            if (vote[b] == predicted_taken)
                ++tallies[b].agree;
        }
        if (vote[0] == vote[1] && vote[1] == vote[2])
            ++unanimous;
    }

    if (!partialUpdate) {
        for (int b = 0; b < 3; ++b)
            banks[b].update(idx[b], taken);
        return;
    }

    if (predicted_taken == taken) {
        // Partial update: only strengthen the banks that voted with the
        // (correct) majority; leave losers free to be stolen.
        for (int b = 0; b < 3; ++b) {
            if (vote[b] == taken)
                banks[b].strengthen(idx[b]);
        }
    } else {
        // Mispredict: retrain all banks toward the outcome.
        for (int b = 0; b < 3; ++b)
            banks[b].update(idx[b], taken);
    }
}

uint64_t
EgskewPredictor::storageBits() const
{
    return 3 * banks[0].storageBits();
}

std::string
EgskewPredictor::name() const
{
    return "e-gskew-3x" + std::to_string(size_t{1} << log2Entries) + "-h"
        + std::to_string(histLen);
}

VoteSnapshot
EgskewPredictor::lastVotes() const
{
    VoteSnapshot v;
    v.valid = true;
    v.bim = vote[0];
    v.g0 = vote[1];
    v.g1 = vote[2];
    v.meta = false; // no chooser: the majority always decides
    v.majority = (static_cast<int>(vote[0]) + vote[1] + vote[2]) >= 2;
    return v;
}

void
EgskewPredictor::publishMetrics(MetricRegistry &registry,
                                const std::string &prefix) const
{
    for (int b = 0; b < 3; ++b) {
        const std::string bank = prefix + ".bank" + std::to_string(b);
        registry.counter(bank + ".lookups").inc(tallies[b].lookups);
        registry.counter(bank + ".conflicts").inc(tallies[b].conflicts);
        registry.counter(bank + ".agree").inc(tallies[b].agree);
    }
    registry.counter(prefix + ".unanimous").inc(unanimous);
}

void
EgskewPredictor::reset()
{
    for (auto &bank : banks)
        bank.reset();
    tallies = {};
    unanimous = 0;
}

} // namespace ev8
