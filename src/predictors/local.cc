#include "predictors/local.hh"

#include "common/bits.hh"

namespace ev8
{

LocalPredictor::LocalPredictor(unsigned log2_bht, unsigned local_bits,
                               unsigned log2_pht)
    : log2Bht(log2_bht), localBits(local_bits), log2Pht(log2_pht),
      bht(size_t{1} << log2_bht, 0), pht(size_t{1} << log2_pht)
{
}

size_t
LocalPredictor::bhtIndex(uint64_t pc) const
{
    return static_cast<size_t>((pc >> 2) & mask(log2Bht));
}

size_t
LocalPredictor::phtIndex(uint64_t pc, uint16_t local) const
{
    if (log2Pht > localBits) {
        // Room for PC bits alongside the full local history.
        const uint64_t pc_part = (pc >> 2) & mask(log2Pht - localBits);
        return static_cast<size_t>((pc_part << localBits) | local);
    }
    return static_cast<size_t>(local & mask(log2Pht));
}

bool
LocalPredictor::predict(const BranchSnapshot &snap)
{
    const uint16_t local = bht[bhtIndex(snap.pc)];
    return pht.taken(phtIndex(snap.pc, local));
}

void
LocalPredictor::update(const BranchSnapshot &snap, bool taken, bool)
{
    uint16_t &local = bht[bhtIndex(snap.pc)];
    pht.update(phtIndex(snap.pc, local), taken);
    local = static_cast<uint16_t>(((local << 1) | (taken ? 1 : 0))
                                  & mask(localBits));
}

uint64_t
LocalPredictor::storageBits() const
{
    return (uint64_t{1} << log2Bht) * localBits + pht.storageBits();
}

std::string
LocalPredictor::name() const
{
    return "local-" + std::to_string(size_t{1} << log2Bht) + "x"
        + std::to_string(localBits);
}

void
LocalPredictor::reset()
{
    bht.assign(bht.size(), 0);
    pht.reset();
}

TournamentPredictor::TournamentPredictor(unsigned log2_local_bht,
                                         unsigned local_bits,
                                         unsigned log2_local_pht,
                                         unsigned log2_global,
                                         unsigned log2_choice)
    : local(log2_local_bht, local_bits, log2_local_pht),
      global(size_t{1} << log2_global),
      choice(size_t{1} << log2_choice),
      log2Global(log2_global), log2Choice(log2_choice)
{
}

bool
TournamentPredictor::predict(const BranchSnapshot &snap)
{
    lastLocalPred = local.predict(snap);
    const uint64_t gh = snap.hist.indexHist;
    lastGlobalPred = global.taken(gh & mask(log2Global));
    const bool use_global = choice.taken(gh & mask(log2Choice));
    return use_global ? lastGlobalPred : lastLocalPred;
}

void
TournamentPredictor::update(const BranchSnapshot &snap, bool taken, bool)
{
    const uint64_t gh = snap.hist.indexHist;

    // Chooser trains only when the components disagree.
    if (lastLocalPred != lastGlobalPred)
        choice.update(gh & mask(log2Choice), lastGlobalPred == taken);

    global.update(gh & mask(log2Global), taken);
    local.update(snap, taken, lastLocalPred);
}

uint64_t
TournamentPredictor::storageBits() const
{
    return local.storageBits() + global.storageBits()
        + choice.storageBits();
}

std::string
TournamentPredictor::name() const
{
    return "tournament-21264";
}

void
TournamentPredictor::reset()
{
    local.reset();
    global.reset();
    choice.reset();
}

} // namespace ev8
