/**
 * @file
 * The 2Bc-gskew prediction combination and partial-update policy
 * (Sections 4.1-4.2), shared between the unconstrained
 * TwoBcGskewPredictor and the hardware-constrained Ev8Predictor so the
 * two models cannot drift apart.
 *
 * The Banks type must provide:
 *     bool taken(TableId, size_t idx) const;
 *     void strengthen(TableId, size_t idx);   // hysteresis-only write
 *     void update(TableId, size_t idx, bool taken); // full 2-bit step
 */

#ifndef EV8_PREDICTORS_GSKEW_POLICY_HH
#define EV8_PREDICTORS_GSKEW_POLICY_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ev8
{

class MetricRegistry; // obs/metrics.hh

/** Table identifiers, in the paper's order. */
enum TableId : unsigned
{
    BIM = 0,
    G0 = 1,
    G1 = 2,
    META = 3,
    kNumTables = 4,
};

/** One lookup's indices and component votes. */
struct GskewLookup
{
    std::array<size_t, kNumTables> idx{};
    bool bimPred = false;
    bool g0Pred = false;
    bool g1Pred = false;
    bool metaPred = false; //!< true: the e-gskew majority is selected
    bool majority = false;
    bool overall = false;
};

/** Fills the vote fields of @p look from the current bank contents. */
template <typename Banks>
inline void
computeGskewVotes(const Banks &banks, GskewLookup &look)
{
    look.bimPred = banks.taken(BIM, look.idx[BIM]);
    look.g0Pred = banks.taken(G0, look.idx[G0]);
    look.g1Pred = banks.taken(G1, look.idx[G1]);
    look.metaPred = banks.taken(META, look.idx[META]);
    look.majority = (static_cast<int>(look.bimPred) + look.g0Pred
                     + look.g1Pred) >= 2;
    look.overall = look.metaPred ? look.majority : look.bimPred;
}

/**
 * Per-bank vote bookkeeping shared by the 2Bc-gskew-family predictors
 * (unconstrained, EV8-constrained). Fed once per update() from the
 * cached GskewLookup; published into a MetricRegistry on demand.
 *
 * Per voting bank (BIM/G0/G1): a "conflict" is a vote against the
 * resolved outcome -- the direct symptom of destructive table aliasing;
 * "agree" counts votes matching the overall prediction. For META the
 * same fields mean: conflict = the chooser selected the component that
 * turned out wrong, agree = it selected the correct one.
 */
struct GskewVoteStats
{
    struct PerBank
    {
        uint64_t lookups = 0;
        uint64_t conflicts = 0;
        uint64_t agree = 0;
    };

    std::array<PerBank, kNumTables> bank{};
    uint64_t updates = 0;
    uint64_t unanimous = 0;        //!< BIM, G0, G1 all voted alike
    uint64_t metaSelectsGskew = 0; //!< chooser picked the majority side
    uint64_t mispredicts = 0;

    void
    note(const GskewLookup &look, bool taken)
    {
        // Straight-line on purpose: this runs once per update on every
        // metrics-observed lane, and a per-bank loop over a temporary
        // vote array costs more than the bookkeeping itself in
        // unoptimized builds. Branchless increments, same counters.
        ++updates;
        PerBank &bb = bank[BIM];
        ++bb.lookups;
        bb.conflicts += look.bimPred != taken;
        bb.agree += look.bimPred == look.overall;
        PerBank &b0 = bank[G0];
        ++b0.lookups;
        b0.conflicts += look.g0Pred != taken;
        b0.agree += look.g0Pred == look.overall;
        PerBank &b1 = bank[G1];
        ++b1.lookups;
        b1.conflicts += look.g1Pred != taken;
        b1.agree += look.g1Pred == look.overall;
        PerBank &bm = bank[META];
        ++bm.lookups;
        const bool selected = look.metaPred ? look.majority : look.bimPred;
        bm.conflicts += selected != taken;
        bm.agree += selected == taken;
        unanimous +=
            look.bimPred == look.g0Pred && look.g0Pred == look.g1Pred;
        metaSelectsGskew += look.metaPred;
        mispredicts += look.overall != taken;
    }
};

/**
 * Publishes @p stats as counters named
 * "<prefix>.bank<k>.{lookups,conflicts,agree}" (k in table order:
 * 0=BIM, 1=G0, 2=G1, 3=Meta) plus "<prefix>.{updates,unanimous,
 * meta_selects_gskew,mispredicts}". Implemented in predictor.cc.
 */
void publishGskewVoteStats(MetricRegistry &registry,
                           const std::string &prefix,
                           const GskewVoteStats &stats);

namespace detail
{

/** Strengthens every majority-vote participant that voted @p taken. */
template <typename Banks>
inline void
strengthenCorrectVoters(Banks &banks, const GskewLookup &look, bool taken)
{
    if (look.bimPred == taken)
        banks.strengthen(BIM, look.idx[BIM]);
    if (look.g0Pred == taken)
        banks.strengthen(G0, look.idx[G0]);
    if (look.g1Pred == taken)
        banks.strengthen(G1, look.idx[G1]);
}

} // namespace detail

/**
 * The partial-update policy of Section 4.2, verbatim:
 *
 * on a correct prediction:
 *   - when all predictors were agreeing: do not update (Rationale 1);
 *   - otherwise strengthen Meta if the two predictions differed, and
 *     strengthen the correct prediction on the participating tables
 *     (BIM when the bimodal prediction was used; every correctly-voting
 *     bank when the majority vote was used).
 *
 * on a misprediction:
 *   - when the two predictions differed: first update the chooser
 *     (Rationale 2), then recompute the overall prediction under the
 *     new chooser value -- if now correct, strengthen the participating
 *     tables; if still wrong, update all banks;
 *   - when both predictions agreed (both wrong): update all banks.
 */
template <typename Banks>
inline void
gskewPartialUpdate(Banks &banks, const GskewLookup &look, bool taken)
{
    if (look.overall == taken) {
        if (look.bimPred == look.g0Pred && look.g0Pred == look.g1Pred) {
            // Rationale 1: all three agree; leave every counter soft so
            // a colliding (address, history) pair can steal one without
            // breaking the majority.
            return;
        }
        if (look.majority != look.bimPred)
            banks.strengthen(META, look.idx[META]);
        if (!look.metaPred)
            banks.strengthen(BIM, look.idx[BIM]);
        else
            detail::strengthenCorrectVoters(banks, look, taken);
        return;
    }

    if (look.majority != look.bimPred) {
        // Rationale 2: the other component was right; retrain only the
        // chooser, then check whether that alone fixes the prediction.
        banks.update(META, look.idx[META], look.majority == taken);
        const bool new_meta = banks.taken(META, look.idx[META]);
        const bool new_overall = new_meta ? look.majority : look.bimPred;
        if (new_overall == taken) {
            if (!new_meta)
                banks.strengthen(BIM, look.idx[BIM]);
            else
                detail::strengthenCorrectVoters(banks, look, taken);
            return;
        }
    }
    banks.update(BIM, look.idx[BIM], taken);
    banks.update(G0, look.idx[G0], taken);
    banks.update(G1, look.idx[G1], taken);
}

/** The reference total-update policy, for the update-policy ablation. */
template <typename Banks>
inline void
gskewTotalUpdate(Banks &banks, const GskewLookup &look, bool taken)
{
    banks.update(BIM, look.idx[BIM], taken);
    banks.update(G0, look.idx[G0], taken);
    banks.update(G1, look.idx[G1], taken);
    if (look.majority != look.bimPred)
        banks.update(META, look.idx[META], look.majority == taken);
}

} // namespace ev8

#endif // EV8_PREDICTORS_GSKEW_POLICY_HH
