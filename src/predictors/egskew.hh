/**
 * @file
 * The enhanced skewed branch predictor e-gskew of Michaud, Seznec &
 * Uhlig [15]: three banks of 2-bit counters -- a bimodal bank indexed by
 * address only, plus two banks indexed by distinct skewing functions of
 * (address, history) -- combined by majority vote, trained with partial
 * update. The single-scheme building block of 2Bc-gskew (Section 4.1).
 */

#ifndef EV8_PREDICTORS_EGSKEW_HH
#define EV8_PREDICTORS_EGSKEW_HH

#include <array>

#include "predictors/predictor.hh"
#include "predictors/tables.hh"

namespace ev8
{

class EgskewPredictor final : public ConditionalBranchPredictor
{
  public:
    /**
     * @param log2_entries entries per bank (three equal banks)
     * @param history_length global history bits in the skewed indices
     * @param partial_update partial (true, the "enhanced" policy) or
     *        total update (false), for the update-policy ablation
     */
    EgskewPredictor(unsigned log2_entries, unsigned history_length,
                    bool partial_update = true);

    bool predict(const BranchSnapshot &snap) override;
    void update(const BranchSnapshot &snap, bool taken,
                bool predicted_taken) override;

    /**
     * Fused predict-and-train step for the multi-lane kernel: one
     * computeIndices() pass serves both the majority vote and the
     * update policy (the split predict()/update() pair recomputes the
     * three skewed indices and re-reads the banks in update()). Table
     * transitions are identical to predict() followed by update().
     */
    bool predictAndUpdate(const BranchSnapshot &snap, bool taken);

    uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;
    VoteSnapshot lastVotes() const override;
    void publishMetrics(MetricRegistry &registry,
                        const std::string &prefix) const override;

  private:
    void computeIndices(const BranchSnapshot &snap);

    /** Trains on the outcome using the already-computed idx/vote. */
    void applyUpdate(bool taken, bool predicted_taken);

    unsigned log2Entries;
    unsigned histLen;
    bool partialUpdate;
    std::array<TwoBitCounterTable, 3> banks;

    // Lookup state cached between predict() and update().
    std::array<size_t, 3> idx{};
    std::array<bool, 3> vote{};

    // Per-bank vote tallies (bank0 = bimodal, 1/2 = skewed).
    struct BankTally
    {
        uint64_t lookups = 0;
        uint64_t conflicts = 0; //!< vote against the resolved outcome
        uint64_t agree = 0;     //!< vote matching the majority decision
    };
    std::array<BankTally, 3> tallies{};
    uint64_t unanimous = 0;
};

} // namespace ev8

#endif // EV8_PREDICTORS_EGSKEW_HH
