#include "predictors/gshare.hh"

#include <cassert>

#include "common/bits.hh"

namespace ev8
{

GsharePredictor::GsharePredictor(unsigned log2_entries,
                                 unsigned history_length)
    : log2Entries(log2_entries), histLen(history_length),
      table(size_t{1} << log2_entries)
{
}

size_t
GsharePredictor::index(const BranchSnapshot &snap) const
{
    const uint64_t h = snap.hist.indexHist & mask(histLen);
    const uint64_t folded = histLen == 0 ? 0 : xorFold(h, log2Entries);
    return static_cast<size_t>(((snap.pc >> 2) ^ folded)
                               & mask(log2Entries));
}

bool
GsharePredictor::predict(const BranchSnapshot &snap)
{
    return table.taken(index(snap));
}

void
GsharePredictor::update(const BranchSnapshot &snap, bool taken, bool)
{
    table.update(index(snap), taken);
}

GsharePredictor::FusedGroup::FusedGroup(GsharePredictor *const *preds,
                                        size_t nlanes)
{
    lanes_.assign(preds, preds + nlanes);
    backend_ = simd::activeBackend();
    if (backend_ == simd::Backend::Off)
        return;
    constexpr size_t kW = simd::U64x4::kLanes;
    paddedLanes_ = (nlanes + kW - 1) & ~(kW - 1);
    n_.resize(paddedLanes_);
    idxMask_.resize(paddedLanes_);
    histMask_.resize(paddedLanes_);
    wordBase_.resize(paddedLanes_);
    for (size_t l = 0; l < paddedLanes_; ++l) {
        const GsharePredictor &p = *lanes_[l < nlanes ? l : 0];
        // The bounds index()'s xorFold() requires.
        assert(p.log2Entries >= 1 && p.log2Entries < 64);
        n_[l] = p.log2Entries;
        idxMask_[l] = mask(p.log2Entries);
        histMask_[l] = p.histLen == 0 ? 0 : mask(p.histLen);
        wordBase_[l] =
            reinterpret_cast<uintptr_t>(p.table.wordsData());
    }
}

void
GsharePredictor::FusedGroup::step(const BranchSnapshot &snap, bool taken,
                                  uint64_t *misp)
{
    if (backend_ == simd::Backend::Off) {
        // The per-lane two-phase step of the pre-vector fused kernel.
        for (size_t l = 0; l < lanes_.size(); ++l) {
            const size_t idx = lanes_[l]->laneIndex(snap);
            misp[l] += lanes_[l]->applyAt(idx, taken) != taken;
        }
    } else if (backend_ == simd::Backend::Avx2) {
        stepVecAvx2(snap, taken, misp);
    } else {
        stepVecScalar(snap, taken, misp);
    }
}

uint64_t
GsharePredictor::storageBits() const
{
    return table.storageBits();
}

std::string
GsharePredictor::name() const
{
    return "gshare-" + std::to_string(size_t{1} << log2Entries) + "-h"
        + std::to_string(histLen);
}

void
GsharePredictor::reset()
{
    table.reset();
}

} // namespace ev8
