#include "predictors/gshare.hh"

#include "common/bits.hh"

namespace ev8
{

GsharePredictor::GsharePredictor(unsigned log2_entries,
                                 unsigned history_length)
    : log2Entries(log2_entries), histLen(history_length),
      table(size_t{1} << log2_entries)
{
}

size_t
GsharePredictor::index(const BranchSnapshot &snap) const
{
    const uint64_t h = snap.hist.indexHist & mask(histLen);
    const uint64_t folded = histLen == 0 ? 0 : xorFold(h, log2Entries);
    return static_cast<size_t>(((snap.pc >> 2) ^ folded)
                               & mask(log2Entries));
}

bool
GsharePredictor::predict(const BranchSnapshot &snap)
{
    return table.taken(index(snap));
}

void
GsharePredictor::update(const BranchSnapshot &snap, bool taken, bool)
{
    table.update(index(snap), taken);
}

uint64_t
GsharePredictor::storageBits() const
{
    return table.storageBits();
}

std::string
GsharePredictor::name() const
{
    return "gshare-" + std::to_string(size_t{1} << log2Entries) + "-h"
        + std::to_string(histLen);
}

void
GsharePredictor::reset()
{
    table.reset();
}

} // namespace ev8
