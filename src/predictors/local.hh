/**
 * @file
 * Local-history prediction and the 21264-style tournament hybrid.
 *
 * Section 3 of the paper explains why the EV8 had to abandon the
 * previous-generation (Alpha 21264 [7]) local/global hybrid: predicting
 * 16 branches per cycle would need a 16-ported local history table, and
 * speculative local-history repair across >256 in-flight instructions
 * is intractable. We implement both schemes anyway -- they are the
 * paper's motivating counterpoint, and the global-vs-local example uses
 * them to reproduce the argument quantitatively.
 */

#ifndef EV8_PREDICTORS_LOCAL_HH
#define EV8_PREDICTORS_LOCAL_HH

#include <cstdint>
#include <vector>

#include "predictors/predictor.hh"
#include "predictors/tables.hh"

namespace ev8
{

/**
 * Two-level local predictor (PAg): a PC-indexed table of per-branch
 * history registers selecting counters in a shared pattern table.
 */
class LocalPredictor : public ConditionalBranchPredictor
{
  public:
    /**
     * @param log2_bht branch history table entries
     * @param local_bits bits of local history per entry
     * @param log2_pht pattern table entries (counters)
     */
    LocalPredictor(unsigned log2_bht, unsigned local_bits,
                   unsigned log2_pht);

    bool predict(const BranchSnapshot &snap) override;
    void update(const BranchSnapshot &snap, bool taken,
                bool predicted_taken) override;
    uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

  private:
    size_t bhtIndex(uint64_t pc) const;
    size_t phtIndex(uint64_t pc, uint16_t local) const;

    unsigned log2Bht;
    unsigned localBits;
    unsigned log2Pht;
    std::vector<uint16_t> bht;
    TwoBitCounterTable pht;
};

/**
 * The Alpha 21264 tournament predictor [7]: a local component (1K x
 * 10-bit histories into a 1K-counter PHT), a global component (4K
 * counters under a 12-bit global history), and a global-history-indexed
 * chooser.
 */
class TournamentPredictor : public ConditionalBranchPredictor
{
  public:
    /** Defaults reproduce the 21264 sizing (~29 Kbits). */
    TournamentPredictor(unsigned log2_local_bht = 10,
                        unsigned local_bits = 10,
                        unsigned log2_local_pht = 10,
                        unsigned log2_global = 12,
                        unsigned log2_choice = 12);

    bool predict(const BranchSnapshot &snap) override;
    void update(const BranchSnapshot &snap, bool taken,
                bool predicted_taken) override;
    uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

  private:
    LocalPredictor local;
    TwoBitCounterTable global;
    TwoBitCounterTable choice;
    unsigned log2Global;
    unsigned log2Choice;

    bool lastLocalPred = false;
    bool lastGlobalPred = false;
};

} // namespace ev8

#endif // EV8_PREDICTORS_LOCAL_HH
