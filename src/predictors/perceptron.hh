/**
 * @file
 * The perceptron predictor of Jimenez & Lin [11].
 *
 * Section 9 of the paper singles out the perceptron as a promising
 * "backup predictor" direction for branches that defeat table-based
 * global-history schemes; we implement it as the repository's
 * future-work extension and compare it in bench_ext_perceptron.
 *
 * One weight vector per PC-indexed entry; prediction is the sign of
 * w0 + sum(w_i * x_i) with x_i = +/-1 history bits; training adjusts
 * weights on a misprediction or when the margin is below the threshold.
 */

#ifndef EV8_PREDICTORS_PERCEPTRON_HH
#define EV8_PREDICTORS_PERCEPTRON_HH

#include <cstdint>
#include <vector>

#include "predictors/predictor.hh"

namespace ev8
{

class PerceptronPredictor : public ConditionalBranchPredictor
{
  public:
    /**
     * @param log2_entries number of weight vectors
     * @param history_length inputs per perceptron (plus a bias weight)
     * @param weight_bits signed weight width (8 in [11])
     */
    PerceptronPredictor(unsigned log2_entries, unsigned history_length,
                        unsigned weight_bits = 8);

    bool predict(const BranchSnapshot &snap) override;
    void update(const BranchSnapshot &snap, bool taken,
                bool predicted_taken) override;
    uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    int threshold() const { return theta; }

  private:
    size_t entryIndex(uint64_t pc) const;
    int dot(size_t entry, uint64_t hist) const;

    unsigned log2Entries;
    unsigned histLen;
    unsigned weightBits;
    int theta;      //!< training threshold, 1.93 * h + 14 per [11]
    int weightMax;  //!< saturation bound
    std::vector<int16_t> weights; //!< (histLen + 1) weights per entry

    int lastDot = 0; //!< cached between predict() and update()
};

} // namespace ev8

#endif // EV8_PREDICTORS_PERCEPTRON_HH
