/**
 * @file
 * GAs: Yeh & Patt's global two-level adaptive predictor [27]. A single
 * global history register selects among per-address-set pattern tables:
 * the index concatenates low PC bits with the history. One of the
 * "aliased" global-history schemes the de-aliased predictors improved
 * upon (Section 4 background).
 */

#ifndef EV8_PREDICTORS_GAS_HH
#define EV8_PREDICTORS_GAS_HH

#include "predictors/predictor.hh"
#include "predictors/tables.hh"

namespace ev8
{

class GasPredictor : public ConditionalBranchPredictor
{
  public:
    /**
     * @param log2_entries total table size; the index is the
     *        concatenation {pc bits, history bits}
     * @param history_length history bits in the index (must be
     *        <= log2_entries; the remainder is PC bits)
     */
    GasPredictor(unsigned log2_entries, unsigned history_length);

    bool predict(const BranchSnapshot &snap) override;
    void update(const BranchSnapshot &snap, bool taken,
                bool predicted_taken) override;
    uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

  private:
    size_t index(const BranchSnapshot &snap) const;

    unsigned log2Entries;
    unsigned histLen;
    TwoBitCounterTable table;
};

} // namespace ev8

#endif // EV8_PREDICTORS_GAS_HH
