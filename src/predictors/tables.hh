/**
 * @file
 * Compact counter-table storage shared by the predictor implementations.
 */

#ifndef EV8_PREDICTORS_TABLES_HH
#define EV8_PREDICTORS_TABLES_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/bits.hh"

namespace ev8
{

/**
 * A dense table of 2-bit saturating counters (one byte each for speed).
 * All entries initialize to weakly-not-taken (value 1), the initial
 * state the paper uses for its simulations (Section 8.1.1).
 */
class TwoBitCounterTable
{
  public:
    static constexpr uint8_t kWeaklyNotTaken = 1;

    explicit TwoBitCounterTable(size_t entries = 0)
        : table(entries, kWeaklyNotTaken)
    {
        assert(entries == 0 || isPowerOf2(entries));
    }

    size_t size() const { return table.size(); }

    bool taken(size_t idx) const { return table[idx] >= 2; }

    /** True at either saturated extreme. */
    bool
    isStrong(size_t idx) const
    {
        return table[idx] == 0 || table[idx] == 3;
    }

    uint8_t raw(size_t idx) const { return table[idx]; }
    void set(size_t idx, uint8_t value) { assert(value <= 3); table[idx] = value; }

    void
    update(size_t idx, bool taken)
    {
        uint8_t &c = table[idx];
        if (taken) {
            if (c < 3)
                ++c;
        } else {
            if (c > 0)
                --c;
        }
    }

    /** Pushes the counter deeper in its current direction. */
    void
    strengthen(size_t idx)
    {
        update(idx, taken(idx));
    }

    void
    reset()
    {
        table.assign(table.size(), kWeaklyNotTaken);
    }

    /** Storage cost: 2 bits per entry. */
    uint64_t storageBits() const { return table.size() * 2; }

  private:
    std::vector<uint8_t> table;
};

/**
 * A 2-bit counter table physically split into a prediction-bit array and
 * a (possibly smaller) hysteresis-bit array, as on the EV8 (Sections
 * 4.3-4.4). When the hysteresis array has half as many entries as the
 * prediction array, two prediction entries share one hysteresis entry:
 * same index minus the most significant bit.
 *
 * Initial state is weakly not-taken: prediction 0, hysteresis 1.
 */
class SplitCounterArray
{
  public:
    SplitCounterArray() = default;

    SplitCounterArray(size_t pred_entries, size_t hyst_entries)
        : pred(pred_entries, 0), hyst(hyst_entries, 1),
          hystMask(hyst_entries - 1)
    {
        assert(isPowerOf2(pred_entries));
        assert(isPowerOf2(hyst_entries));
        assert(hyst_entries <= pred_entries);
    }

    size_t predSize() const { return pred.size(); }
    size_t hystSize() const { return hyst.size(); }

    /** Maps a prediction index onto its (possibly shared) hysteresis
     *  entry by dropping high-order index bits (Section 4.4). */
    size_t hystIndex(size_t idx) const { return idx & hystMask; }

    bool taken(size_t idx) const { return pred[idx] != 0; }

    /** Strong = hysteresis agrees with the prediction bit. */
    bool
    isStrong(size_t idx) const
    {
        return hyst[hystIndex(idx)] == pred[idx];
    }

    /**
     * Partial-update "strengthen": only the hysteresis array is written
     * (a correct prediction never touches the prediction array).
     */
    void
    strengthen(size_t idx)
    {
        hyst[hystIndex(idx)] = pred[idx];
    }

    /**
     * Full 2-bit-counter step toward @p taken: reads the hysteresis bit
     * and writes prediction and/or hysteresis as needed.
     */
    void
    update(size_t idx, bool taken)
    {
        const uint8_t p = pred[idx];
        uint8_t &h = hyst[hystIndex(idx)];
        const uint8_t t = taken ? 1 : 0;
        if (p == t) {
            h = p;                 // strengthen
        } else if (h == p) {
            h = !p;                // strong -> weak
        } else {
            pred[idx] = t;         // weak -> flip direction (stays weak)
            h = !t;
        }
    }

    void
    reset()
    {
        pred.assign(pred.size(), 0);
        hyst.assign(hyst.size(), 1);
    }

    uint64_t storageBits() const { return pred.size() + hyst.size(); }

    uint8_t rawPred(size_t idx) const { return pred[idx]; }
    uint8_t rawHyst(size_t idx) const { return hyst[hystIndex(idx)]; }

    void
    setRaw(size_t idx, bool prediction, bool hysteresis)
    {
        pred[idx] = prediction;
        hyst[hystIndex(idx)] = hysteresis;
    }

  private:
    std::vector<uint8_t> pred;
    std::vector<uint8_t> hyst;
    size_t hystMask = 0;
};

} // namespace ev8

#endif // EV8_PREDICTORS_TABLES_HH
