/**
 * @file
 * Compact counter-table storage shared by the predictor implementations.
 *
 * Both table types store exactly as many bits as the hardware would: 2
 * bits per counter (32 counters per 64-bit word) and 1 bit per split
 * prediction/hysteresis entry. Beyond honesty about the storage budget,
 * packing is a throughput optimization: the paper's largest tables (a
 * 352-Kbit 2Bc-gskew, megabit gshares) overflow L2 as byte-per-counter
 * arrays but fit their actual size packed, so the simulation's random
 * table walks stop missing cache. The bit arithmetic is a shift and a
 * mask -- cheaper than the memory hierarchy levels it saves.
 */

#ifndef EV8_PREDICTORS_TABLES_HH
#define EV8_PREDICTORS_TABLES_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/bits.hh"

namespace ev8
{

/**
 * A dense table of 2-bit saturating counters, packed 32 to a 64-bit
 * word. All entries initialize to weakly-not-taken (value 1), the
 * initial state the paper uses for its simulations (Section 8.1.1).
 */
class TwoBitCounterTable
{
  public:
    static constexpr uint8_t kWeaklyNotTaken = 1;

    explicit TwoBitCounterTable(size_t entries = 0)
        : words((entries + kPerWord - 1) / kPerWord, kInitWord),
          entries_(entries)
    {
        assert(entries == 0 || isPowerOf2(entries));
    }

    size_t size() const { return entries_; }

    bool
    taken(size_t idx) const
    {
        // Counter >= 2 is exactly "bit 1 of the counter is set".
        return ((words[idx / kPerWord] >> (shift(idx) + 1)) & 1) != 0;
    }

    /** True at either saturated extreme. */
    bool
    isStrong(size_t idx) const
    {
        const uint8_t c = raw(idx);
        return c == 0 || c == 3;
    }

    uint8_t
    raw(size_t idx) const
    {
        return static_cast<uint8_t>(
            (words[idx / kPerWord] >> shift(idx)) & 3u);
    }

    void
    set(size_t idx, uint8_t value)
    {
        assert(value <= 3);
        uint64_t &w = words[idx / kPerWord];
        const unsigned s = shift(idx);
        w = (w & ~(uint64_t{3} << s)) | (uint64_t{value} << s);
    }

    void
    update(size_t idx, bool taken)
    {
        const uint8_t c = raw(idx);
        if (taken) {
            if (c < 3)
                set(idx, c + 1);
        } else {
            if (c > 0)
                set(idx, c - 1);
        }
    }

    /**
     * Fused taken()+update(): one word read serves both the prediction
     * and the saturation test, and the +-1 step is a single add/sub on
     * the packed word (the 2-bit lane cannot carry into its neighbour
     * because the saturation check bounds it first). Returns what
     * taken(idx) returned before the update.
     */
    bool
    readAndUpdate(size_t idx, bool taken)
    {
        uint64_t &w = words[idx / kPerWord];
        const unsigned s = shift(idx);
        const uint8_t c = static_cast<uint8_t>((w >> s) & 3u);
        if (taken) {
            if (c < 3)
                w += uint64_t{1} << s;
        } else {
            if (c > 0)
                w -= uint64_t{1} << s;
        }
        return (c & 2u) != 0;
    }

    /** Pushes the counter deeper in its current direction. */
    void
    strengthen(size_t idx)
    {
        update(idx, taken(idx));
    }

    void
    reset()
    {
        words.assign(words.size(), kInitWord);
    }

    /** Storage cost: 2 bits per entry. */
    uint64_t storageBits() const { return uint64_t{entries_} * 2; }

    static constexpr size_t kPerWord = 32; //!< 2-bit counters per word

    /** Raw packed-word access for the vector fused-group steppers. */
    uint64_t *wordsData() { return words.data(); }
    const uint64_t *wordsData() const { return words.data(); }

    /**
     * Saturating increment of every 2-bit counter whose bit0 is set in
     * @p sel, as bitplane boolean arithmetic on the packed word: with
     * b0/b1 the low/high bitplanes, counters not already at 3 flip b0,
     * and those whose b0 was set carry into b1. Stray odd bits of
     * @p sel are ignored. Templated over the word type so the same
     * definition serves uint64_t (scalar, unit tests) and the simd.hh
     * vector wrappers (the fused hot path); W needs a broadcasting
     * W(uint64_t) constructor and &, |, ^, ~, <<1, >>1.
     *
     * Equivalent to update(idx, true) per selected counter -- the
     * exhaustive state x mask check lives in tests/test_simd.cc.
     */
    template <class W>
    static W
    maskedSatIncWord(const W &w, const W &sel)
    {
        const W low(0x5555555555555555ULL);
        const W b0 = w & low;
        const W b1 = (w >> 1) & low;
        const W eff = sel & low & ~(b0 & b1); // not saturated at 3
        return w ^ eff ^ ((b0 & eff) << 1);   // flip b0, carry into b1
    }

    /** Saturating decrement counterpart of maskedSatIncWord(). */
    template <class W>
    static W
    maskedSatDecWord(const W &w, const W &sel)
    {
        const W low(0x5555555555555555ULL);
        const W b0 = w & low;
        const W b1 = (w >> 1) & low;
        const W eff = sel & low & (b0 | b1); // not saturated at 0
        return w ^ eff ^ ((~b0 & eff) << 1); // flip b0, borrow from b1
    }

  private:
    /** 32 copies of weakly-not-taken (01 in every 2-bit lane). */
    static constexpr uint64_t kInitWord = 0x5555555555555555ULL;

    static unsigned
    shift(size_t idx)
    {
        return static_cast<unsigned>((idx % kPerWord) * 2);
    }

    std::vector<uint64_t> words;
    size_t entries_ = 0;
};

/**
 * A 2-bit counter table physically split into a prediction-bit array and
 * a (possibly smaller) hysteresis-bit array, as on the EV8 (Sections
 * 4.3-4.4). When the hysteresis array has half as many entries as the
 * prediction array, two prediction entries share one hysteresis entry:
 * same index minus the most significant bit. Each array stores one bit
 * per entry, 64 to a word -- the split tables are exactly their Table 4
 * storage budget in memory.
 *
 * Initial state is weakly not-taken: prediction 0, hysteresis 1.
 */
class SplitCounterArray
{
  public:
    SplitCounterArray() = default;

    SplitCounterArray(size_t pred_entries, size_t hyst_entries)
        : pred((pred_entries + 63) / 64, 0),
          hyst((hyst_entries + 63) / 64, ~uint64_t{0}),
          predSize_(pred_entries), hystSize_(hyst_entries),
          hystMask(hyst_entries - 1)
    {
        assert(isPowerOf2(pred_entries));
        assert(isPowerOf2(hyst_entries));
        assert(hyst_entries <= pred_entries);
    }

    size_t predSize() const { return predSize_; }
    size_t hystSize() const { return hystSize_; }

    /** Maps a prediction index onto its (possibly shared) hysteresis
     *  entry by dropping high-order index bits (Section 4.4). */
    size_t hystIndex(size_t idx) const { return idx & hystMask; }

    bool taken(size_t idx) const { return getBit(pred, idx); }

    /** Strong = hysteresis agrees with the prediction bit. */
    bool
    isStrong(size_t idx) const
    {
        return getBit(hyst, hystIndex(idx)) == getBit(pred, idx);
    }

    /**
     * Partial-update "strengthen": only the hysteresis array is written
     * (a correct prediction never touches the prediction array).
     */
    void
    strengthen(size_t idx)
    {
        setBit(hyst, hystIndex(idx), getBit(pred, idx));
    }

    /**
     * Full 2-bit-counter step toward @p taken: reads the hysteresis bit
     * and writes prediction and/or hysteresis as needed.
     */
    void
    update(size_t idx, bool taken)
    {
        const bool p = getBit(pred, idx);
        const size_t hi = hystIndex(idx);
        if (p == taken) {
            setBit(hyst, hi, p);       // strengthen
        } else if (getBit(hyst, hi) == p) {
            setBit(hyst, hi, !p);      // strong -> weak
        } else {
            setBit(pred, idx, taken);  // weak -> flip direction
            setBit(hyst, hi, !taken);  // (stays weak)
        }
    }

    void
    reset()
    {
        pred.assign(pred.size(), 0);
        hyst.assign(hyst.size(), ~uint64_t{0});
    }

    uint64_t
    storageBits() const
    {
        return uint64_t{predSize_} + uint64_t{hystSize_};
    }

    uint8_t rawPred(size_t idx) const { return getBit(pred, idx); }

    /**
     * Raw bitplane words, for the vector fused-group steppers: the
     * vote pass gathers one packed prediction word per lane and
     * extracts the bit in-register, and the vector update-policy pass
     * applies the 2-bit transition as masked bitplane arithmetic on
     * both planes (pred' = p^(d&e), hyst' = p^(d&~e) with d = p^v,
     * e = h^p -- exactly update()'s three cases; strengthen() is the
     * d = 0 instance). tests/test_simd.cc pins the equivalence.
     */
    const uint64_t *predWords() const { return pred.data(); }
    uint64_t *predWords() { return pred.data(); }
    uint64_t *hystWords() { return hyst.data(); }

    uint8_t
    rawHyst(size_t idx) const
    {
        return getBit(hyst, hystIndex(idx));
    }

    void
    setRaw(size_t idx, bool prediction, bool hysteresis)
    {
        setBit(pred, idx, prediction);
        setBit(hyst, hystIndex(idx), hysteresis);
    }

  private:
    static bool
    getBit(const std::vector<uint64_t> &bits, size_t idx)
    {
        return ((bits[idx / 64] >> (idx % 64)) & 1) != 0;
    }

    static void
    setBit(std::vector<uint64_t> &bits, size_t idx, bool value)
    {
        uint64_t &w = bits[idx / 64];
        const uint64_t mask = uint64_t{1} << (idx % 64);
        w = value ? (w | mask) : (w & ~mask);
    }

    std::vector<uint64_t> pred;
    std::vector<uint64_t> hyst;
    size_t predSize_ = 0;
    size_t hystSize_ = 0;
    size_t hystMask = 0;
};

} // namespace ev8

#endif // EV8_PREDICTORS_TABLES_HH
