#include "predictors/factory.hh"

#include <sstream>
#include <stdexcept>

#include "predictors/agree.hh"
#include "predictors/bimodal.hh"
#include "predictors/bimode.hh"
#include "predictors/egskew.hh"
#include "predictors/gas.hh"
#include "predictors/gshare.hh"
#include "predictors/local.hh"
#include "predictors/perceptron.hh"
#include "predictors/twobcgskew.hh"
#include "predictors/yags.hh"

namespace ev8
{

PredictorPtr
make2BcGskew256K()
{
    return std::make_unique<TwoBcGskewPredictor>(
        TwoBcGskewConfig::symmetric(15, 0, 13, 16, 23, "2Bc-gskew-256Kb"));
}

PredictorPtr
make2BcGskew512K()
{
    return std::make_unique<TwoBcGskewPredictor>(
        TwoBcGskewConfig::symmetric(16, 0, 17, 20, 27, "2Bc-gskew-512Kb"));
}

PredictorPtr
makeBimode544K()
{
    return std::make_unique<BimodePredictor>(17, 14, 20);
}

PredictorPtr
makeGshare2M()
{
    return std::make_unique<GsharePredictor>(20, 20);
}

PredictorPtr
makeYags288K()
{
    return std::make_unique<YagsPredictor>(14, 14, 23, 6);
}

PredictorPtr
makeYags576K()
{
    return std::make_unique<YagsPredictor>(15, 15, 25, 6);
}

PredictorPtr
make2BcGskew4M()
{
    // Fig. 10: 4 x 1M 2-bit entries. The paper does not publish its
    // history lengths; these follow the same growth trend as the 256Kb
    // and 512Kb points.
    return std::make_unique<TwoBcGskewPredictor>(
        TwoBcGskewConfig::symmetric(20, 0, 21, 24, 31, "2Bc-gskew-8Mb"));
}

PredictorPtr
make2BcGskewEv8Size()
{
    return std::make_unique<TwoBcGskewPredictor>(
        TwoBcGskewConfig::ev8Size());
}

namespace
{

std::vector<std::string>
splitSpec(const std::string &spec)
{
    std::vector<std::string> parts;
    std::istringstream in(spec);
    std::string part;
    while (std::getline(in, part, ':'))
        parts.push_back(part);
    return parts;
}

unsigned
arg(const std::vector<std::string> &parts, size_t i, const char *what)
{
    if (i >= parts.size()) {
        throw std::invalid_argument(
            std::string("predictor spec missing argument: ") + what);
    }
    return static_cast<unsigned>(std::stoul(parts[i]));
}

unsigned
argOr(const std::vector<std::string> &parts, size_t i, unsigned fallback)
{
    return i < parts.size()
        ? static_cast<unsigned>(std::stoul(parts[i])) : fallback;
}

} // namespace

PredictorPtr
makePredictor(const std::string &spec)
{
    const auto parts = splitSpec(spec);
    if (parts.empty())
        throw std::invalid_argument("empty predictor spec");
    const std::string &kind = parts[0];

    if (kind == "fig5-2bcgskew256") return make2BcGskew256K();
    if (kind == "fig5-2bcgskew512") return make2BcGskew512K();
    if (kind == "fig5-bimode544") return makeBimode544K();
    if (kind == "fig5-gshare2M") return makeGshare2M();
    if (kind == "fig5-yags288") return makeYags288K();
    if (kind == "fig5-yags576") return makeYags576K();
    if (kind == "fig10-2bcgskew8M") return make2BcGskew4M();
    if (kind == "ev8size") return make2BcGskewEv8Size();

    if (kind == "bimodal") {
        return std::make_unique<BimodalPredictor>(
            arg(parts, 1, "log2 entries"));
    }
    if (kind == "gshare") {
        return std::make_unique<GsharePredictor>(
            arg(parts, 1, "log2 entries"), arg(parts, 2, "history"));
    }
    if (kind == "gas") {
        return std::make_unique<GasPredictor>(
            arg(parts, 1, "log2 entries"), arg(parts, 2, "history"));
    }
    if (kind == "agree") {
        const unsigned log2e = arg(parts, 1, "log2 entries");
        return std::make_unique<AgreePredictor>(
            log2e, arg(parts, 2, "history"), argOr(parts, 3, log2e));
    }
    if (kind == "egskew") {
        return std::make_unique<EgskewPredictor>(
            arg(parts, 1, "log2 entries"), arg(parts, 2, "history"));
    }
    if (kind == "bimode") {
        return std::make_unique<BimodePredictor>(
            arg(parts, 1, "log2 direction"), arg(parts, 2, "log2 choice"),
            arg(parts, 3, "history"));
    }
    if (kind == "yags") {
        return std::make_unique<YagsPredictor>(
            arg(parts, 1, "log2 choice"), arg(parts, 2, "log2 cache"),
            arg(parts, 3, "history"), argOr(parts, 4, 6));
    }
    if (kind == "2bcgskew") {
        return std::make_unique<TwoBcGskewPredictor>(
            TwoBcGskewConfig::symmetric(
                arg(parts, 1, "log2 entries"), arg(parts, 2, "BIM history"),
                arg(parts, 3, "G0 history"), arg(parts, 4, "Meta history"),
                arg(parts, 5, "G1 history"), "2bcgskew:" + parts[1]));
    }
    if (kind == "perceptron") {
        return std::make_unique<PerceptronPredictor>(
            arg(parts, 1, "log2 entries"), arg(parts, 2, "history"));
    }
    if (kind == "local") {
        return std::make_unique<LocalPredictor>(
            arg(parts, 1, "log2 bht"), arg(parts, 2, "local bits"),
            arg(parts, 3, "log2 pht"));
    }
    if (kind == "tournament")
        return std::make_unique<TournamentPredictor>();

    throw std::invalid_argument("unknown predictor spec: " + spec);
}

std::vector<std::string>
knownPredictorSpecs()
{
    return {
        "fig5-2bcgskew256", "fig5-2bcgskew512", "fig5-bimode544",
        "fig5-gshare2M", "fig5-yags288", "fig5-yags576",
        "fig10-2bcgskew8M", "ev8size",
        "bimodal:<log2>",
        "gshare:<log2>:<hist>",
        "gas:<log2>:<hist>",
        "agree:<log2>:<hist>[:<log2bias>]",
        "egskew:<log2>:<hist>",
        "bimode:<log2dir>:<log2choice>:<hist>",
        "yags:<log2choice>:<log2cache>:<hist>[:<tagbits>]",
        "2bcgskew:<log2>:<hBIM>:<hG0>:<hMeta>:<hG1>",
        "perceptron:<log2>:<hist>",
        "local:<log2bht>:<bits>:<log2pht>",
        "tournament",
    };
}

} // namespace ev8
