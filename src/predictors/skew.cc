#include "predictors/skew.hh"

#include <cassert>

#include "common/bits.hh"

namespace ev8
{

SkewSlices
makeSkewSlices(uint64_t addr, uint64_t hist, unsigned hist_len, unsigned n)
{
    assert(n >= 2 && n < 64);
    assert(hist_len <= 63);

    const uint64_t a = addr >> 2; // instruction-granular address
    const uint64_t h = hist & mask(hist_len);

    // v1 carries the address, v2 the history (each XOR-folded to n
    // bits). Keeping the components in separate slices guarantees --
    // by linearity of the fold and bijectivity of H/H' -- that any
    // single-bit change of either component always moves the index
    // (Section 7.5, principle 2).
    const uint64_t v1 = xorFold(a, n);
    const uint64_t v2 = hist_len == 0 ? 0 : xorFold(h, n);
    return {v1 & mask(n), v2 & mask(n)};
}

uint64_t
skewIndex(unsigned table, uint64_t addr, uint64_t hist, unsigned hist_len,
          unsigned n)
{
    const SkewSlices s = makeSkewSlices(addr, hist, hist_len, n);
    return skewHPow(s.v1, table, n) ^ skewHInvPow(s.v2, table, n);
}

uint64_t
addressIndex(uint64_t addr, unsigned n)
{
    return xorFold(addr >> 2, n);
}

} // namespace ev8
