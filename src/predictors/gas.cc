#include "predictors/gas.hh"

#include <cassert>

#include "common/bits.hh"

namespace ev8
{

GasPredictor::GasPredictor(unsigned log2_entries, unsigned history_length)
    : log2Entries(log2_entries), histLen(history_length),
      table(size_t{1} << log2_entries)
{
    assert(histLen <= log2Entries);
}

size_t
GasPredictor::index(const BranchSnapshot &snap) const
{
    const uint64_t h = snap.hist.indexHist & mask(histLen);
    const uint64_t pc_part = (snap.pc >> 2) & mask(log2Entries - histLen);
    return static_cast<size_t>((pc_part << histLen) | h);
}

bool
GasPredictor::predict(const BranchSnapshot &snap)
{
    return table.taken(index(snap));
}

void
GasPredictor::update(const BranchSnapshot &snap, bool taken, bool)
{
    table.update(index(snap), taken);
}

uint64_t
GasPredictor::storageBits() const
{
    return table.storageBits();
}

std::string
GasPredictor::name() const
{
    return "gas-" + std::to_string(size_t{1} << log2Entries) + "-h"
        + std::to_string(histLen);
}

void
GasPredictor::reset()
{
    table.reset();
}

} // namespace ev8
