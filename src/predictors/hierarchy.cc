#include "predictors/hierarchy.hh"

#include "common/bits.hh"

namespace ev8
{

HierarchyPredictor::HierarchyPredictor(PredictorPtr primary,
                                       PredictorPtr backup,
                                       unsigned log2_chooser,
                                       std::string label)
    : primary(std::move(primary)), backup(std::move(backup)),
      log2Chooser(log2_chooser), chooser(size_t{1} << log2_chooser),
      label(std::move(label))
{
}

size_t
HierarchyPredictor::chooserIndex(uint64_t pc) const
{
    const uint64_t line = pc >> 2;
    return static_cast<size_t>((line ^ (line >> log2Chooser))
                               & mask(log2Chooser));
}

bool
HierarchyPredictor::predict(const BranchSnapshot &snap)
{
    lastPrimary = primary->predict(snap);
    lastBackup = backup->predict(snap);
    const bool use_backup = chooser.taken(chooserIndex(snap.pc));
    ++lookups;
    if (use_backup)
        ++backupUsed;
    return use_backup ? lastBackup : lastPrimary;
}

void
HierarchyPredictor::update(const BranchSnapshot &snap, bool taken,
                           bool predicted_taken)
{
    // The chooser trains only on disagreement, toward whichever
    // component was right.
    if (lastPrimary != lastBackup)
        chooser.update(chooserIndex(snap.pc), lastBackup == taken);
    primary->update(snap, taken, lastPrimary);
    backup->update(snap, taken, lastBackup);
    (void)predicted_taken;
}

uint64_t
HierarchyPredictor::storageBits() const
{
    return primary->storageBits() + backup->storageBits()
        + chooser.storageBits();
}

std::string
HierarchyPredictor::name() const
{
    return label.empty()
        ? primary->name() + "+" + backup->name() : label;
}

void
HierarchyPredictor::reset()
{
    primary->reset();
    backup->reset();
    chooser.reset();
    lastPrimary = false;
    lastBackup = false;
    lookups = 0;
    backupUsed = 0;
}

double
HierarchyPredictor::backupUseRate() const
{
    return lookups == 0
        ? 0.0 : static_cast<double>(backupUsed)
              / static_cast<double>(lookups);
}

} // namespace ev8
