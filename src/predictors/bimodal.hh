/**
 * @file
 * Smith's bimodal predictor [21]: a table of 2-bit counters indexed by
 * branch address. The baseline component of every hybrid in the paper.
 */

#ifndef EV8_PREDICTORS_BIMODAL_HH
#define EV8_PREDICTORS_BIMODAL_HH

#include <vector>

#include "common/simd.hh"
#include "predictors/predictor.hh"
#include "predictors/tables.hh"

namespace ev8
{

class BimodalPredictor final : public ConditionalBranchPredictor
{
  public:
    /** @param log2_entries table holds 2^log2_entries 2-bit counters. */
    explicit BimodalPredictor(unsigned log2_entries);

    bool predict(const BranchSnapshot &snap) override;
    void update(const BranchSnapshot &snap, bool taken,
                bool predicted_taken) override;
    uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    /** Fused-kernel entry points; see GsharePredictor::laneIndex(). */
    size_t laneIndex(const BranchSnapshot &snap) const
    {
        return index(snap.pc);
    }
    bool applyAt(size_t idx, bool taken)
    {
        return table.readAndUpdate(idx, taken);
    }

    /** Group stepper; see GsharePredictor::FusedGroup. */
    class FusedGroup
    {
      public:
        FusedGroup(BimodalPredictor *const *preds, size_t nlanes);
        FusedGroup(const FusedGroup &) = delete;
        FusedGroup &operator=(const FusedGroup &) = delete;

        /** Advances every lane over one branch; tallies into misp[l]. */
        void step(const BranchSnapshot &snap, bool taken, uint64_t *misp);

      private:
        template <class Vec>
        void stepVec(const BranchSnapshot &snap, bool taken,
                     uint64_t *misp);
        void stepVecScalar(const BranchSnapshot &snap, bool taken,
                           uint64_t *misp);
        void stepVecAvx2(const BranchSnapshot &snap, bool taken,
                         uint64_t *misp);

        simd::Backend backend_ = simd::Backend::Off;
        std::vector<BimodalPredictor *> lanes_;
        size_t paddedLanes_ = 0;
        std::vector<uint64_t> idxMask_, wordBase_;
    };

  private:
    size_t index(uint64_t pc) const;

    unsigned log2Entries;
    TwoBitCounterTable table;
};

} // namespace ev8

#endif // EV8_PREDICTORS_BIMODAL_HH
