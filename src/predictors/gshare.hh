/**
 * @file
 * McFarling's gshare predictor [14]: a single table of 2-bit counters
 * indexed by (global history XOR branch address). The paper's large
 * "aliased" reference point (Fig. 5 uses a 1M-entry / 2 Mbit gshare).
 *
 * Histories longer than the index width are XOR-folded onto it, which
 * is how the paper explores history lengths wider than log2(size).
 */

#ifndef EV8_PREDICTORS_GSHARE_HH
#define EV8_PREDICTORS_GSHARE_HH

#include <vector>

#include "common/simd.hh"
#include "predictors/predictor.hh"
#include "predictors/tables.hh"

namespace ev8
{

class GsharePredictor final : public ConditionalBranchPredictor
{
  public:
    /**
     * @param log2_entries table holds 2^log2_entries 2-bit counters
     * @param history_length global history bits consumed (may exceed
     *        log2_entries; the excess is XOR-folded)
     */
    GsharePredictor(unsigned log2_entries, unsigned history_length);

    bool predict(const BranchSnapshot &snap) override;
    void update(const BranchSnapshot &snap, bool taken,
                bool predicted_taken) override;
    uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    unsigned historyLength() const { return histLen; }

    /**
     * Two-phase entry points for the fused multi-lane kernel: the pure
     * index computation (so N lanes' folds can be computed
     * back-to-back) and the combined counter read + train step (one
     * table-word access instead of the separate predict()/update()
     * pair, which each recompute the index).
     */
    size_t laneIndex(const BranchSnapshot &snap) const
    {
        return index(snap);
    }
    bool applyAt(size_t idx, bool taken)
    {
        return table.readAndUpdate(idx, taken);
    }

    /**
     * Group stepper for the fused kernel: advances every gshare lane
     * of a fused job through one branch. The vector path computes all
     * lanes' history folds, table indices, counter reads and masked
     * bitplane counter updates four lanes at a time; EV8_SIMD=0 falls
     * back to the per-lane two-phase step. Table transitions and
     * mispredict tallies are bit-identical either way.
     */
    class FusedGroup
    {
      public:
        FusedGroup(GsharePredictor *const *preds, size_t nlanes);
        FusedGroup(const FusedGroup &) = delete;
        FusedGroup &operator=(const FusedGroup &) = delete;

        /** Advances every lane over one branch; tallies into misp[l]. */
        void step(const BranchSnapshot &snap, bool taken, uint64_t *misp);

      private:
        template <class Vec>
        void stepVec(const BranchSnapshot &snap, bool taken,
                     uint64_t *misp);
        void stepVecScalar(const BranchSnapshot &snap, bool taken,
                           uint64_t *misp);
        void stepVecAvx2(const BranchSnapshot &snap, bool taken,
                         uint64_t *misp);

        simd::Backend backend_ = simd::Backend::Off;
        std::vector<GsharePredictor *> lanes_;
        size_t paddedLanes_ = 0;
        //! Per lane (padded; padding aliases lane 0, never written):
        //! index width, index mask, history mask, packed-word base.
        std::vector<uint64_t> n_, idxMask_, histMask_, wordBase_;
    };

  private:
    size_t index(const BranchSnapshot &snap) const;

    unsigned log2Entries;
    unsigned histLen;
    TwoBitCounterTable table;
};

} // namespace ev8

#endif // EV8_PREDICTORS_GSHARE_HH
