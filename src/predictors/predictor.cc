#include "predictors/predictor.hh"

#include <cstdio>

namespace ev8
{

std::string
formatKbits(uint64_t bits)
{
    char buf[48];
    const double kbits = static_cast<double>(bits) / 1024.0;
    if (kbits >= 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.1f Mbits", kbits / 1024.0);
    } else {
        std::snprintf(buf, sizeof(buf), "%.0f Kbits", kbits);
    }
    return buf;
}

} // namespace ev8
