#include "predictors/predictor.hh"

#include <cstdio>

#include "obs/metrics.hh"
#include "predictors/gskew_policy.hh"

namespace ev8
{

void
publishGskewVoteStats(MetricRegistry &registry, const std::string &prefix,
                      const GskewVoteStats &stats)
{
    for (unsigned t = 0; t < kNumTables; ++t) {
        const std::string bank = prefix + ".bank" + std::to_string(t);
        registry.counter(bank + ".lookups").inc(stats.bank[t].lookups);
        registry.counter(bank + ".conflicts")
            .inc(stats.bank[t].conflicts);
        registry.counter(bank + ".agree").inc(stats.bank[t].agree);
    }
    registry.counter(prefix + ".updates").inc(stats.updates);
    registry.counter(prefix + ".unanimous").inc(stats.unanimous);
    registry.counter(prefix + ".meta_selects_gskew")
        .inc(stats.metaSelectsGskew);
    registry.counter(prefix + ".mispredicts").inc(stats.mispredicts);
}

std::string
formatKbits(uint64_t bits)
{
    char buf[48];
    const double kbits = static_cast<double>(bits) / 1024.0;
    if (kbits >= 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.1f Mbits", kbits / 1024.0);
    } else {
        std::snprintf(buf, sizeof(buf), "%.0f Kbits", kbits);
    }
    return buf;
}

} // namespace ev8
