/**
 * @file
 * The vector fused-group steppers, templated over a simd.hh vector
 * type. This header is the single definition of the vector semantics;
 * it is included only by the two backend translation units
 * (fused_vec_scalar.cc and fused_vec_avx2.cc, the latter built with
 * -mavx2), so intrinsic code never leaks into plainly-compiled TUs.
 *
 * Every stepper is arithmetic-identical to its scalar sibling by
 * construction -- same folds, same H/H' chains, same counter
 * transitions -- so artifacts stay byte-identical across EV8_SIMD.
 * The layout of the work differs:
 *
 *  - 2Bc-gskew: phase A computes the deduplicated address/history
 *    slot terms four slots at a time (the fold loop runs until every
 *    lane's remainder is zero; finished lanes contribute zero XORs,
 *    and the per-table H/H' chains apply under per-slot all-ones
 *    masks). Phase B composes each lane's four indices from the slot
 *    values. Phase C gathers the prediction- and hysteresis-bitplane
 *    words four lanes at a time, votes with pure boolean lane math
 *    (majority = (b&g0)|(b&g1)|(g0&g1), overall = bim ^ (meta &
 *    (majority ^ bim))), evaluates the whole partial-update decision
 *    tree as 0/1 lane arithmetic -- no data-dependent branches -- and
 *    retires the counter transitions as masked bitplane XORs written
 *    back one whole word per (bank, real lane). This also retires the
 *    per-lane `p.last` stores of the scalar step.
 *
 *  - gshare/bimodal: index, counter read and the saturating 2-bit
 *    update all happen in-register four lanes at a time; the update
 *    is TwoBitCounterTable::maskedSatIncWord/maskedSatDecWord masked
 *    bitplane arithmetic on the gathered words, written back one
 *    word per real lane (lanes own disjoint tables, so whole-word
 *    write-back cannot clobber a sibling).
 *
 * Reading all lanes' counters before any lane updates (and likewise
 * computing before writing inside one vector) is equivalent to the
 * scalar interleaving because fused lanes are distinct predictor
 * instances: no two lanes share a table.
 */

#ifndef EV8_PREDICTORS_FUSED_VEC_HH
#define EV8_PREDICTORS_FUSED_VEC_HH

#include "common/simd.hh"
#include "predictors/bimodal.hh"
#include "predictors/gshare.hh"
#include "predictors/twobcgskew.hh"

namespace ev8
{

template <class Vec>
void
TwoBcGskewPredictor::FusedGroup::stepVec(const BranchSnapshot &snap,
                                         bool taken, uint64_t *misp)
{
    constexpr size_t kW = Vec::kLanes;

    if (anyPathInfo_
        && (snap.hist.pathZ != pathZ_ || snap.hist.pathY != pathY_
            || snap.hist.pathX != pathX_)) {
        pathZ_ = snap.hist.pathZ;
        pathY_ = snap.hist.pathY;
        pathX_ = snap.hist.pathX;
        bimFold_ = bimPathFold(snap.hist);
        gskewFold_ = gskewPathFold(snap.hist);
    }

    const Vec one(1);

    // Phase A: address-side slot terms, four slots per iteration.
    const Vec pcv(snap.pc);
    const Vec bimFold(bimFold_);
    const Vec gskewFold(gskewFold_);
    for (size_t s = 0; s < paddedAddr_; s += kW) {
        const Vec n = Vec::load(&aN_[s]);
        const Vec nm1 = Vec::load(&aNm1_[s]);
        const Vec m = Vec::load(&aMask_[s]);
        const Vec fold = (bimFold & Vec::load(&aSelBim_[s]))
                         | (gskewFold & Vec::load(&aSelGskew_[s]));
        Vec v = (pcv ^ fold) >> 2;
        Vec x = Vec::zero();
        while (!v.allZero()) {
            x = x ^ (v & m);
            v = Vec::srlv(v, n);
        }
        for (size_t c = 0; c < aChain_.size(); ++c) {
            const Vec act = Vec::load(&aChain_[c][s]);
            if (act.allZero())
                break; // chain masks shrink with the round number
            const Vec fb = (x ^ Vec::srlv(x, nm1)) & one;
            const Vec xn = (x >> 1) | Vec::sllv(fb, nm1);
            x = Vec::blend(act, xn, x);
        }
        x.store(&aVal_[s]);
    }

    // History-side slot terms through the inverse chain H'^table.
    const Vec histv(snap.hist.indexHist);
    for (size_t s = 0; s < paddedHist_; s += kW) {
        const Vec n = Vec::load(&hN_[s]);
        const Vec nm1 = Vec::load(&hNm1_[s]);
        const Vec nm2 = Vec::load(&hNm2_[s]);
        const Vec m = Vec::load(&hMask_[s]);
        Vec v = histv & Vec::load(&hLenMask_[s]);
        Vec x = Vec::zero();
        while (!v.allZero()) {
            x = x ^ (v & m);
            v = Vec::srlv(v, n);
        }
        for (size_t c = 0; c < hChain_.size(); ++c) {
            const Vec act = Vec::load(&hChain_[c][s]);
            if (act.allZero())
                break;
            const Vec top = Vec::srlv(x, nm1) & one;
            const Vec vtop = Vec::srlv(x, nm2) & one;
            const Vec xn = ((x << 1) & m) | (top ^ vtop);
            x = Vec::blend(act, xn, x);
        }
        x.store(&hVal_[s]);
    }

    // Phase B: per-lane indices, counter reads and votes. The index
    // composition runs scalar -- two L1-hot slot loads and an XOR per
    // (lane, table) beat a hardware gather of the same values -- and
    // the table-word reads, the truly scattered memory accesses, run
    // as gathers four lanes at a time.
    for (size_t l = 0; l < paddedLanes_; ++l) {
        const std::array<uint16_t, kNumTables> &as = laneAddr_[l];
        const std::array<uint16_t, kNumTables> &hs = laneHist_[l];
        idxS_[BIM][l] = aVal_[as[BIM]] ^ hVal_[hs[BIM]];
        idxS_[G0][l] = aVal_[as[G0]] ^ hVal_[hs[G0]];
        idxS_[G1][l] = aVal_[as[G1]] ^ hVal_[hs[G1]];
        idxS_[META][l] = aVal_[as[META]] ^ hVal_[hs[META]];
    }
    // Phase C: counter reads, votes and the update policy, four lanes
    // at a time. The whole partial-update decision tree of
    // gskewPartialUpdate() -- including the retrain-the-chooser-then-
    // recheck sequence -- is evaluated as 0/1 boolean lane math, and
    // the 2-bit split-counter transitions land as masked bitplane
    // arithmetic: with d = pred ^ target and e = hyst ^ pred,
    // update() is pred' = p^(d&e), hyst' = p^(d&~e), and
    // strengthen() is the d = 0 instance (hyst' = p). Write-back is
    // one whole word per (bank, real lane); lanes are distinct
    // predictor instances and banks distinct arrays, so no two
    // write-backs of a step can touch the same word.
    const Vec six3(63);
    const Vec tb(taken ? 1 : 0);
    for (size_t l = 0; l < paddedLanes_; l += kW) {
        Vec bit[kNumTables], pw[kNumTables], pa[kNumTables];
        Vec ppos[kNumTables], hbit[kNumTables], hw[kNumTables];
        Vec ha[kNumTables], hpos[kNumTables];
        for (unsigned t = 0; t < kNumTables; ++t) {
            const Vec idx = Vec::load(&idxS_[t][l]);
            pa[t] = Vec::add(Vec::load(&lanePredBase_[t][l]),
                             (idx >> 6) << 3);
            pw[t] = Vec::gather(pa[t]);
            ppos[t] = idx & six3;
            bit[t] = Vec::srlv(pw[t], ppos[t]) & one;
            const Vec hidx = idx & Vec::load(&laneHystMask_[t][l]);
            ha[t] = Vec::add(Vec::load(&laneHystBase_[t][l]),
                             (hidx >> 6) << 3);
            hw[t] = Vec::gather(ha[t]);
            hpos[t] = hidx & six3;
            hbit[t] = Vec::srlv(hw[t], hpos[t]) & one;
        }
        const Vec b = bit[BIM], g0v = bit[G0], g1v = bit[G1];
        const Vec m = bit[META];
        const Vec maj = (b & g0v) | (b & g1v) | (g0v & g1v);
        const Vec ovr = b ^ (m & (maj ^ b));
        ovr.store(&ovrS_[l]);

        // The policy flags, all 0/1 per lane: S = strengthen, U =
        // full update, tgt = the update direction. META retrains
        // toward "the majority was right"; the component banks toward
        // the outcome.
        const Vec c = one ^ (ovr ^ tb);     // prediction was correct
        const Vec ic = c ^ one;
        const Vec notAll = (b ^ g0v) | (g0v ^ g1v);
        const Vec diff = maj ^ b;
        const Vec bEq = one ^ (b ^ tb);
        const Vec g0Eq = one ^ (g0v ^ tb);
        const Vec g1Eq = one ^ (g1v ^ tb);
        // Correct: strengthen META when the components disagreed, and
        // the participating banks' correct votes (BIM when the
        // bimodal prediction was used). All gated off when the three
        // voters were unanimous (Rationale 1).
        const Vec sMetaC = c & diff;
        const Vec cAct = c & notAll;
        const Vec sBimC = cAct & ((one ^ m) | (m & bEq));
        const Vec sG0C = cAct & m & g0Eq;
        const Vec sG1C = cAct & m & g1Eq;
        // Incorrect with the components split: retrain the chooser
        // first (Rationale 2), recompute its post-update prediction
        // bit in-register, and recheck. Only if the overall
        // prediction is still wrong do the banks all retrain.
        const Vec metaUpd = ic & diff;
        const Vec vMeta = one ^ (maj ^ tb);
        const Vec dM = m ^ vMeta;
        const Vec eM = hbit[META] ^ m;
        const Vec newMeta = m ^ (metaUpd & dM & eM);
        const Vec newOvr = b ^ (newMeta & diff);
        const Vec fx = metaUpd & (one ^ (newOvr ^ tb));
        const Vec sBimI = fx & ((one ^ newMeta) | (newMeta & bEq));
        const Vec sG0I = fx & newMeta & g0Eq;
        const Vec sG1I = fx & newMeta & g1Eq;
        const Vec updAll = ic & (one ^ fx);
        // Blend with the reference total-update policy per lane:
        // every component bank retrains, META only when the
        // components disagreed.
        const Vec pm = Vec::load(&lanePartial_[l]);
        const Vec tm = one ^ pm;
        Vec S[kNumTables], U[kNumTables], tgt[kNumTables];
        S[BIM] = pm & (sBimC | sBimI);
        S[G0] = pm & (sG0C | sG0I);
        S[G1] = pm & (sG1C | sG1I);
        S[META] = pm & sMetaC;
        U[BIM] = (pm & updAll) | tm;
        U[G0] = U[BIM];
        U[G1] = U[BIM];
        U[META] = (pm & metaUpd) | (tm & diff);
        tgt[BIM] = tb;
        tgt[G0] = tb;
        tgt[G1] = tb;
        tgt[META] = vMeta;

        // Metrics-observed walks bank the per-walk vote statistics as
        // lane-wise sums of the 0/1 predicates already in registers;
        // the group destructor turns the sums into GskewVoteStats.
        if (anyStats_) {
            const auto acc = [&](std::vector<uint64_t> &a, const Vec &v) {
                Vec::add(Vec::load(&a[l]), v).store(&a[l]);
            };
            acc(accConf_[BIM], b ^ tb);
            acc(accConf_[G0], g0v ^ tb);
            acc(accConf_[G1], g1v ^ tb);
            acc(accAgree_[BIM], one ^ (b ^ ovr));
            acc(accAgree_[G0], one ^ (g0v ^ ovr));
            acc(accAgree_[G1], one ^ (g1v ^ ovr));
            acc(accUnan_, one ^ notAll);
            acc(accMetaSel_, m);
            acc(accMisp_, ovr ^ tb);
        }

        uint64_t pwA[kNumTables][kW], paA[kNumTables][kW];
        uint64_t hwA[kNumTables][kW], haA[kNumTables][kW];
        for (unsigned t = 0; t < kNumTables; ++t) {
            const Vec d = bit[t] ^ tgt[t];
            const Vec e = hbit[t] ^ bit[t];
            const Vec act = S[t] | U[t];
            const Vec hTgt = bit[t] ^ (U[t] & d & (one ^ e));
            const Vec hFlip = act & (hbit[t] ^ hTgt);
            const Vec pFlip = U[t] & d & e;
            (hw[t] ^ Vec::sllv(hFlip, hpos[t])).store(hwA[t]);
            (pw[t] ^ Vec::sllv(pFlip, ppos[t])).store(pwA[t]);
            pa[t].store(paA[t]);
            ha[t].store(haA[t]);
        }
        const size_t real =
            lanes_.size() - l < kW ? lanes_.size() - l : kW;
        for (size_t k = 0; k < real; ++k) {
            for (unsigned t = 0; t < kNumTables; ++t) {
                *reinterpret_cast<uint64_t *>(
                    static_cast<uintptr_t>(paA[t][k])) = pwA[t][k];
                *reinterpret_cast<uint64_t *>(
                    static_cast<uintptr_t>(haA[t][k])) = hwA[t][k];
            }
            misp[l + k] += (ovrS_[l + k] != 0) != taken;
        }
    }

    if (anyStats_)
        ++accSteps_;

    // Debug-build bookkeeping for update()'s immediate-update contract
    // assert. Unlike the scalar stepper nothing here fills p.last: the
    // untimed event-free fused path never reads the cached lookup back.
#ifndef NDEBUG
    for (size_t l = 0; l < lanes_.size(); ++l) {
        lanes_[l]->lastPc = snap.pc;
        lanes_[l]->lastIndexHist = snap.hist.indexHist;
    }
#endif
}

template <class Vec>
void
GsharePredictor::FusedGroup::stepVec(const BranchSnapshot &snap,
                                     bool taken, uint64_t *misp)
{
    constexpr size_t kW = Vec::kLanes;
    const Vec one(1);
    const Vec pcv(snap.pc >> 2);
    const Vec histv(snap.hist.indexHist);
    for (size_t l = 0; l < paddedLanes_; l += kW) {
        const Vec n = Vec::load(&n_[l]);
        const Vec m = Vec::load(&idxMask_[l]);
        Vec v = histv & Vec::load(&histMask_[l]);
        Vec f = Vec::zero();
        while (!v.allZero()) {
            f = f ^ (v & m);
            v = Vec::srlv(v, n);
        }
        const Vec idx = (pcv ^ f) & m;
        const Vec waddr =
            Vec::add(Vec::load(&wordBase_[l]), (idx >> 5) << 3);
        const Vec w = Vec::gather(waddr);
        const Vec s = (idx & Vec(31)) << 1;
        const Vec counter = Vec::srlv(w, s); // low 2 bits
        const Vec sel = Vec::sllv(one, s);
        const Vec wNew =
            taken ? TwoBitCounterTable::maskedSatIncWord(w, sel)
                  : TwoBitCounterTable::maskedSatDecWord(w, sel);
        uint64_t wArr[kW], aArr[kW], cArr[kW];
        wNew.store(wArr);
        waddr.store(aArr);
        counter.store(cArr);
        const size_t real =
            lanes_.size() - l < kW ? lanes_.size() - l : kW;
        for (size_t k = 0; k < real; ++k) {
            *reinterpret_cast<uint64_t *>(
                static_cast<uintptr_t>(aArr[k])) = wArr[k];
            misp[l + k] +=
                (((cArr[k] >> 1) & 1) != 0) != taken;
        }
    }
}

template <class Vec>
void
BimodalPredictor::FusedGroup::stepVec(const BranchSnapshot &snap,
                                      bool taken, uint64_t *misp)
{
    constexpr size_t kW = Vec::kLanes;
    const Vec one(1);
    const Vec pcv(snap.pc >> 2);
    for (size_t l = 0; l < paddedLanes_; l += kW) {
        const Vec idx = pcv & Vec::load(&idxMask_[l]);
        const Vec waddr =
            Vec::add(Vec::load(&wordBase_[l]), (idx >> 5) << 3);
        const Vec w = Vec::gather(waddr);
        const Vec s = (idx & Vec(31)) << 1;
        const Vec counter = Vec::srlv(w, s);
        const Vec sel = Vec::sllv(one, s);
        const Vec wNew =
            taken ? TwoBitCounterTable::maskedSatIncWord(w, sel)
                  : TwoBitCounterTable::maskedSatDecWord(w, sel);
        uint64_t wArr[kW], aArr[kW], cArr[kW];
        wNew.store(wArr);
        waddr.store(aArr);
        counter.store(cArr);
        const size_t real =
            lanes_.size() - l < kW ? lanes_.size() - l : kW;
        for (size_t k = 0; k < real; ++k) {
            *reinterpret_cast<uint64_t *>(
                static_cast<uintptr_t>(aArr[k])) = wArr[k];
            misp[l + k] +=
                (((cArr[k] >> 1) & 1) != 0) != taken;
        }
    }
}

} // namespace ev8

#endif // EV8_PREDICTORS_FUSED_VEC_HH
