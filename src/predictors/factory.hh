/**
 * @file
 * Construction helpers: the paper's named configurations plus a spec
 * string parser for the example CLIs.
 */

#ifndef EV8_PREDICTORS_FACTORY_HH
#define EV8_PREDICTORS_FACTORY_HH

#include <string>
#include <vector>

#include "predictors/predictor.hh"

namespace ev8
{

/// @name Fig. 5 configurations (sizes and best history lengths from
/// Section 8.2).
/// @{

/** 4*32K-entry 2Bc-gskew, 256 Kbits, histories (0, 13, 16, 23). */
PredictorPtr make2BcGskew256K();

/** 4*64K-entry 2Bc-gskew, 512 Kbits, histories (0, 17, 20, 27). */
PredictorPtr make2BcGskew512K();

/** Bi-mode with 2x128K direction tables + 16K choice, 544 Kbits, h=20. */
PredictorPtr makeBimode544K();

/** 1M-entry gshare, 2 Mbits, best history 20. */
PredictorPtr makeGshare2M();

/** YAGS, 16K choice + 2x16K 6-bit-tag caches, 288 Kbits, h=23. */
PredictorPtr makeYags288K();

/** YAGS, 32K choice + 2x32K 6-bit-tag caches, 576 Kbits, h=25. */
PredictorPtr makeYags576K();

/** The Fig. 10 brute-force point: 4*1M-entry 2Bc-gskew (8 Mbits). */
PredictorPtr make2BcGskew4M();

/** The EV8-budget logical 2Bc-gskew (Table 1 geometry, 352 Kbits). */
PredictorPtr make2BcGskewEv8Size();

/// @}

/**
 * Parses a predictor spec string, e.g. "gshare:20:20",
 * "2bcgskew:16:0:17:20:27", "yags:14:14:23", "bimodal:14",
 * "perceptron:12:24", "tournament", or a named configuration
 * ("fig5-gshare2M", "ev8size", ...). Throws std::invalid_argument on an
 * unknown spec. See factory.cc for the full grammar.
 */
PredictorPtr makePredictor(const std::string &spec);

/** All spec names understood by makePredictor, for --help output. */
std::vector<std::string> knownPredictorSpecs();

} // namespace ev8

#endif // EV8_PREDICTORS_FACTORY_HH
