#include "predictors/perceptron.hh"

#include <algorithm>

#include "common/bits.hh"

namespace ev8
{

PerceptronPredictor::PerceptronPredictor(unsigned log2_entries,
                                         unsigned history_length,
                                         unsigned weight_bits)
    : log2Entries(log2_entries), histLen(history_length),
      weightBits(weight_bits),
      theta(static_cast<int>(1.93 * history_length + 14)),
      weightMax((1 << (weight_bits - 1)) - 1),
      weights((size_t{1} << log2_entries) * (history_length + 1), 0)
{
}

size_t
PerceptronPredictor::entryIndex(uint64_t pc) const
{
    const uint64_t line = pc >> 2;
    return static_cast<size_t>((line ^ (line >> log2Entries))
                               & mask(log2Entries));
}

int
PerceptronPredictor::dot(size_t entry, uint64_t hist) const
{
    const int16_t *w = &weights[entry * (histLen + 1)];
    int sum = w[0]; // bias weight
    for (unsigned i = 0; i < histLen; ++i)
        sum += bit(hist, i) ? w[i + 1] : -w[i + 1];
    return sum;
}

bool
PerceptronPredictor::predict(const BranchSnapshot &snap)
{
    lastDot = dot(entryIndex(snap.pc), snap.hist.indexHist);
    return lastDot >= 0;
}

void
PerceptronPredictor::update(const BranchSnapshot &snap, bool taken,
                            bool predicted_taken)
{
    if (predicted_taken == taken && std::abs(lastDot) > theta)
        return; // confident and correct: no training

    int16_t *w = &weights[entryIndex(snap.pc) * (histLen + 1)];
    const int t = taken ? 1 : -1;
    auto adjust = [this](int16_t &weight, int delta) {
        weight = static_cast<int16_t>(std::clamp(weight + delta,
                                                 -weightMax - 1,
                                                 weightMax));
    };
    adjust(w[0], t);
    for (unsigned i = 0; i < histLen; ++i) {
        const int x = bit(snap.hist.indexHist, i) ? 1 : -1;
        adjust(w[i + 1], t * x);
    }
}

uint64_t
PerceptronPredictor::storageBits() const
{
    return (uint64_t{1} << log2Entries) * (histLen + 1) * weightBits;
}

std::string
PerceptronPredictor::name() const
{
    return "perceptron-" + std::to_string(size_t{1} << log2Entries) + "-h"
        + std::to_string(histLen);
}

void
PerceptronPredictor::reset()
{
    weights.assign(weights.size(), 0);
    lastDot = 0;
}

} // namespace ev8
