/**
 * @file
 * AVX2 backend entry points: the fused_vec.hh steppers instantiated
 * on simd::U64x4Avx2. This is the only translation unit built with
 * -mavx2 (see src/predictors/CMakeLists.txt); its interface to the
 * rest of the build is scalar-argument member functions, so no vector
 * types cross the TU boundary.
 *
 * When the toolchain cannot compile -mavx2 the file is built plain
 * and falls back to the emulated type; runtime dispatch never selects
 * the Avx2 backend in that configuration (builtWithAvx2() is false),
 * so the fallback exists only to keep the link complete.
 */

#include "predictors/fused_vec.hh"

namespace ev8
{

#if defined(__AVX2__)
using Avx2Vec = simd::U64x4Avx2;
#else
using Avx2Vec = simd::U64x4;
#endif

void
TwoBcGskewPredictor::FusedGroup::stepVecAvx2(const BranchSnapshot &snap,
                                             bool taken, uint64_t *misp)
{
    stepVec<Avx2Vec>(snap, taken, misp);
}

void
GsharePredictor::FusedGroup::stepVecAvx2(const BranchSnapshot &snap,
                                         bool taken, uint64_t *misp)
{
    stepVec<Avx2Vec>(snap, taken, misp);
}

void
BimodalPredictor::FusedGroup::stepVecAvx2(const BranchSnapshot &snap,
                                          bool taken, uint64_t *misp)
{
    stepVec<Avx2Vec>(snap, taken, misp);
}

} // namespace ev8
