/**
 * @file
 * Table 3 reproduction: the ratio lghist/ghist -- how many conditional
 * branches one block-compressed history bit summarizes on average
 * (Section 5.3; "for vortex the 23 lghist bits represent on average 36
 * branches" is this ratio times the history length).
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "predictors/bimodal.hh"

using namespace ev8;

namespace
{

/** The paper's Table 3 ratios. */
constexpr double kPaperRatio[] = {1.24, 1.57, 1.12, 1.20,
                                  1.55, 1.53, 1.32, 1.59};

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv,
                     "Table 3", "Ratio lghist/ghist (branches "
                                "represented per history bit)");

    SuiteRunner &runner = ctx.runner();
    TextTable table;
    table.header({"benchmark", "lghist/ghist", "paper", "fetch blocks",
                  "lghist bits"});

    for (size_t i = 0; i < runner.size(); ++i) {
        if (!benchQuiet())
            std::fprintf(stderr, "  running %s ...\n",
                         runner.name(i).c_str());
        BimodalPredictor dummy(10); // the predictor is irrelevant here
        const SimResult r = simulateTrace(
            runner.trace(i), dummy, ctx.instrument(SimConfig::ev8()));
        ctx.noteTiming(r.timing);
        table.row({runner.name(i), fmt(r.lghistRatio(), 2),
                   fmt(kPaperRatio[i], 2),
                   std::to_string(r.fetchBlocks),
                   std::to_string(r.lghistBits)});
        ctx.recordRow(runner.name(i), 0,
                      {"lghist_ratio", "paper_ratio", "fetch_blocks",
                       "lghist_bits"},
                      {r.lghistRatio(), kPaperRatio[i],
                       double(r.fetchBlocks), double(r.lghistBits)});
    }
    if (!benchQuiet())
        std::printf("%s\n", table.render().c_str());

    printShapeNotes({
        "every ratio > 1: lghist compresses several branch outcomes "
        "into one bit per fetch block",
        "branch-dense benchmarks (vortex, with its short basic blocks) "
        "show the largest compression",
        "ratios in the paper's 1.1 - 1.6 range",
    });
    return ctx.finish();
}
