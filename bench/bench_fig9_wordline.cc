/**
 * @file
 * Fig. 9 reproduction: effect of the wordline (shared, unhashable)
 * index bits and of the hardware constraints on the index functions
 * (Section 8.5). Rows, as in the paper:
 *
 *   address only, no path -- PC-only shared index, no path bit in lghist
 *   address only, path    -- PC-only shared index, path bit in lghist
 *   no path               -- EV8 wordline (4 hist + 2 addr bits), no
 *                            path bit in lghist
 *   EV8                   -- the shipping design
 *   complete hash         -- same geometry/information vector, no
 *                            hardware constraints on the hashing
 *   4*64K 2Bc-gskew ghist -- 512 Kbit, unconstrained, conventional
 *                            history
 */

#include "bench_common.hh"
#include "core/ev8_predictor.hh"
#include "predictors/factory.hh"

using namespace ev8;

namespace
{

PredictorFactory
hardware(WordlineMode mode, const char *label)
{
    return [mode, label] {
        Ev8Config cfg;
        cfg.wordline = mode;
        cfg.label = label;
        return std::make_unique<Ev8Predictor>(cfg);
    };
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv,
                     "Fig. 9", "Effect of wordline indices and "
                               "index-function constraints");

    SuiteRunner &runner = ctx.runner();

    SimConfig no_path = SimConfig::ev8();
    no_path.history = HistoryMode::LghistNoPath;
    const SimConfig ev8_vector = SimConfig::ev8();

    const std::vector<ExperimentRow> rows = {
        {"address only, no path",
         hardware(WordlineMode::AddressOnly, "EV8-addr-wordline"),
         no_path},
        {"address only, path",
         hardware(WordlineMode::AddressOnly, "EV8-addr-wordline"),
         ev8_vector},
        {"no path", hardware(WordlineMode::Ev8, "EV8"), no_path},
        {"EV8", hardware(WordlineMode::Ev8, "EV8"), ev8_vector},
        {"complete hash", [] { return make2BcGskewEv8Size(); },
         ev8_vector},
        {"4*64K 2Bc-gskew ghist", [] { return make2BcGskew512K(); },
         SimConfig::ghist()},
    };

    const auto results = runAndPrint(ctx, runner, rows);
    (void)results;

    printShapeNotes({
        "PC-only wordline bits restrict the shared-index distribution "
        "(clustered code addresses congest some wordlines): worst rows",
        "mixing 4 lghist bits into the wordline spreads accesses and "
        "recovers the loss",
        "path information in lghist makes its distribution more "
        "uniform and is worth more here than for the unconstrained "
        "predictor (Section 8.5)",
        "the constrained EV8 design lands within noise of the complete "
        "hash: the careful column/unshuffle engineering worked",
        "the 352 Kbit EV8 stands comparison against the 512 Kbit "
        "unconstrained ghist predictor (the paper's headline claim)",
    });
    return ctx.finish();
}
