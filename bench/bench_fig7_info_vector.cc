/**
 * @file
 * Fig. 7 reproduction: impact of the information vector on prediction
 * accuracy for a 4*64K-entry 2Bc-gskew (Section 8.3): conventional
 * branch history -> lghist without path -> lghist with path -> three
 * fetch blocks old lghist -> the full EV8 information vector (3-old
 * lghist + path information from the three last blocks).
 */

#include "bench_common.hh"
#include "predictors/twobcgskew.hh"

using namespace ev8;

namespace
{

PredictorFactory
gskew64K(bool use_path, const char *label)
{
    return [use_path, label] {
        // 4*64K entries; history lengths in the lghist-optimal range
        // (Section 8.3: lghist optima are slightly shorter than the
        // conventional-history ones).
        TwoBcGskewConfig cfg =
            TwoBcGskewConfig::symmetric(16, 0, 13, 15, 21, label);
        cfg.usePathInfo = use_path;
        return std::make_unique<TwoBcGskewPredictor>(cfg);
    };
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv,
                     "Fig. 7", "Impact of the information vector on "
                               "branch prediction accuracy (4*64K "
                               "2Bc-gskew)");

    SuiteRunner &runner = ctx.runner();

    SimConfig ghist = SimConfig::ghist();

    SimConfig lghist_no_path;
    lghist_no_path.history = HistoryMode::LghistNoPath;

    SimConfig lghist_path;
    lghist_path.history = HistoryMode::LghistPath;

    SimConfig old3;
    old3.history = HistoryMode::LghistPath;
    old3.historyAge = 3;

    const SimConfig ev8_vector = SimConfig::ev8(); // 3-old + path regs

    const std::vector<ExperimentRow> rows = {
        {"ghist (conventional)", gskew64K(false, "ghist"), ghist},
        {"lghist, no path", gskew64K(false, "lghist-nopath"),
         lghist_no_path},
        {"lghist + path", gskew64K(false, "lghist-path"), lghist_path},
        {"3-old lghist", gskew64K(false, "lghist-3old"), old3},
        {"EV8 info vector", gskew64K(true, "ev8-vector"), ev8_vector},
    };

    const auto results = runAndPrint(ctx, runner, rows);
    printBars("EV8 info vector, misp/KI per benchmark:", results[4]);

    printShapeNotes({
        "lghist performs in the same range as conventional branch "
        "history: the loss from compressing each fetch block to one "
        "bit is balanced by covering more branches per history bit "
        "(Table 3)",
        "embedding path information in lghist is generally beneficial "
        "(it de-aliases otherwise identical histories)",
        "using three-fetch-blocks-old history degrades accuracy, but "
        "the impact is limited",
        "path information from the three skipped blocks recovers most "
        "of the aging loss: the EV8 vector ends close to ghist",
    });
    return ctx.finish();
}
