/**
 * @file
 * Fig. 7 reproduction: impact of the information vector on prediction
 * accuracy for a 4*64K-entry 2Bc-gskew (Section 8.3): conventional
 * branch history -> lghist without path -> lghist with path -> three
 * fetch blocks old lghist -> the full EV8 information vector (3-old
 * lghist + path information from the three last blocks).
 */

#include "bench_common.hh"
#include "serve/grids.hh"

using namespace ev8;

int
main(int argc, char **argv)
{
    // The rows come from the shared "fig7" grid registry
    // (serve/grids.hh): one definition of the labels, factories and
    // per-row information-vector presets for the batch artifact and a
    // served client's -- CI's serve gate compares the two.
    const GridSpec *grid = findGrid("fig7");
    BenchContext ctx(argc, argv, grid->benchId, grid->title);

    SuiteRunner &runner = ctx.runner();

    std::vector<ExperimentRow> rows;
    rows.reserve(grid->rows.size());
    for (const GridRowSpec &row : grid->rows) {
        rows.push_back({row.label,
                        [&row] { return makeRowPredictor(row); },
                        rowBaseConfig(*grid, row)});
    }

    const auto results = runAndPrint(ctx, runner, rows);
    printBars("EV8 info vector, misp/KI per benchmark:", results[4]);

    printShapeNotes({
        "lghist performs in the same range as conventional branch "
        "history: the loss from compressing each fetch block to one "
        "bit is balanced by covering more branches per history bit "
        "(Table 3)",
        "embedding path information in lghist is generally beneficial "
        "(it de-aliases otherwise identical histories)",
        "using three-fetch-blocks-old history degrades accuracy, but "
        "the impact is limited",
        "path information from the three skipped blocks recovers most "
        "of the aging loss: the EV8 vector ends close to ghist",
    });
    return ctx.finish();
}
