/**
 * @file
 * Section 9 extension: the paper's future-work direction -- backup
 * predictors with different information vectors (perceptron [11],
 * local history) against the EV8 and its brute-force scaling. Also
 * demonstrates the 21264-style tournament hybrid the EV8 moved away
 * from (Section 3).
 */

#include "bench_common.hh"
#include "core/ev8_predictor.hh"
#include "predictors/factory.hh"
#include "predictors/hierarchy.hh"
#include "predictors/local.hh"
#include "predictors/perceptron.hh"

using namespace ev8;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv,
                     "Extension (Section 9)", "Perceptron / "
                                              "local-history directions "
                                              "vs. the EV8");

    SuiteRunner &runner = ctx.runner();

    const std::vector<ExperimentRow> rows = {
        {"EV8 (352Kb)", [] { return std::make_unique<Ev8Predictor>(); },
         SimConfig::ev8()},
        {"perceptron 1K x h32 (~264Kb)",
         [] { return std::make_unique<PerceptronPredictor>(10, 32); },
         SimConfig::ghist()},
        {"perceptron 4K x h24 (~800Kb)",
         [] { return std::make_unique<PerceptronPredictor>(12, 24); },
         SimConfig::ghist()},
        {"tournament 21264 (~29Kb)",
         [] { return std::make_unique<TournamentPredictor>(); },
         SimConfig::ghist()},
        {"local PAg 4K x 12 (~80Kb)",
         [] { return std::make_unique<LocalPredictor>(12, 12, 14); },
         SimConfig::ghist()},
        {"EV8 + perceptron backup",
         [] {
             // The Section 9 hierarchy: EV8 primary, perceptron backup
             // with a longer-history information vector, PC-indexed
             // chooser. The backup consumes the same lghist register
             // (its linear dot product reaches deeper than the EV8's
             // table indices).
             return std::make_unique<HierarchyPredictor>(
                 std::make_unique<Ev8Predictor>(),
                 std::make_unique<PerceptronPredictor>(10, 40),
                 12, "EV8+perceptron-backup");
         },
         SimConfig::ev8()},
    };

    runAndPrint(ctx, runner, rows);

    printShapeNotes({
        "the perceptron exploits long histories linearly and is "
        "competitive per bit on correlation-dominated benchmarks -- "
        "the reason Section 9 names it a promising backup direction",
        "it cannot express non-linear history functions, so it does "
        "not dominate the table-based EV8 across the suite",
        "the previous-generation 21264 tournament, at a fraction of "
        "the budget, trails the EV8-class predictors everywhere -- and "
        "its local component is what Section 3 shows cannot scale to "
        "16 predictions/cycle",
        "the EV8 + perceptron-backup hierarchy beats both components: "
        "exactly the Section 9 recipe (a backup with a different "
        "information vector rescues the primary's hard branches)",
    });
    return ctx.finish();
}
