/**
 * @file
 * Minimal AF_UNIX + line-framing plumbing shared by bench_serve (the
 * daemon) and bench_serve_load (the client). The protocol itself is
 * one JSON object per newline-terminated line (serve/protocol.hh);
 * this header only moves those lines across a socket.
 */

#ifndef EV8_BENCH_SERVE_IO_HH
#define EV8_BENCH_SERVE_IO_HH

#include <cerrno>
#include <cstring>
#include <string>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ev8
{
namespace serveio
{

/** Binds + listens on @p path (unlinked first). -1 + @p err on failure. */
inline int
listenUnix(const std::string &path, std::string &err)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        err = "socket path too long: " + path;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        err = "bind " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        err = "listen " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

/**
 * Accepts one connection, polling so the caller can re-check its
 * shutdown flag. Returns the connection fd, -1 on poll timeout, -2 on
 * a hard error.
 */
inline int
acceptWithTimeout(int listen_fd, int timeout_ms)
{
    pollfd p{};
    p.fd = listen_fd;
    p.events = POLLIN;
    const int r = ::poll(&p, 1, timeout_ms);
    if (r == 0)
        return -1;
    if (r < 0)
        return errno == EINTR ? -1 : -2;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    return fd < 0 ? -2 : fd;
}

/** Connects to @p path. -1 + @p err on failure. */
inline int
connectUnix(const std::string &path, std::string &err)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        err = "socket path too long: " + path;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = "connect " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Buffered line reader/writer over one fd. */
class LineChannel
{
  public:
    explicit LineChannel(int fd) : fd_(fd) {}

    ~LineChannel()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    LineChannel(const LineChannel &) = delete;
    LineChannel &operator=(const LineChannel &) = delete;

    /** Reads one '\n'-terminated line (without the '\n'). False at EOF. */
    bool
    readLine(std::string &line)
    {
        for (;;) {
            const size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                line.assign(buf_, 0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            char chunk[4096];
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n <= 0)
                return false;
            buf_.append(chunk, static_cast<size_t>(n));
        }
    }

    /** Writes @p line plus '\n', retrying short writes. */
    bool
    writeLine(const std::string &line)
    {
        std::string framed = line;
        framed.push_back('\n');
        size_t at = 0;
        while (at < framed.size()) {
            const ssize_t n =
                ::write(fd_, framed.data() + at, framed.size() - at);
            if (n <= 0)
                return false;
            at += static_cast<size_t>(n);
        }
        return true;
    }

  private:
    int fd_;
    std::string buf_;
};

} // namespace serveio
} // namespace ev8

#endif // EV8_BENCH_SERVE_IO_HH
