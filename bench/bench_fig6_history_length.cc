/**
 * @file
 * Fig. 6 reproduction: additional mispredictions when each scheme's
 * history length is forced to the conventional log2(table size) instead
 * of its best length -- Section 5.3's point that large predictors want
 * history longer than log2 of their entry count.
 *
 * Faithful to the Section 8.2 methodology, the best length is found by
 * sweeping at the current trace scale (the optimum grows with trace
 * length; the paper swept its 100M-instruction traces).
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "predictors/factory.hh"
#include "predictors/twobcgskew.hh"
#include "sim/sweep.hh"

using namespace ev8;

namespace
{

struct Scheme
{
    const char *label;
    unsigned log2Size;       //!< the conventional history length
    HistoryFactory make;     //!< predictor at a candidate history length
};

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv,
                     "Fig. 6", "Additional mispredictions with history "
                               "length = log2(table size) instead of "
                               "best");

    SuiteRunner &runner = ctx.runner();
    const SimConfig ghist = ctx.instrument(SimConfig::ghist());
    const std::vector<unsigned> lengths{8, 12, 16, 20, 24, 28};

    // For 2Bc-gskew, one length parameter scales all three history
    // lengths with the paper's proportions (G0 ~ 0.62 L, Meta ~ 0.74 L,
    // G1 = L; e.g. L=27 gives 17/20/27, the paper's 512Kb lengths).
    auto gskew = [](unsigned log2_entries) {
        return [log2_entries](unsigned len) -> PredictorPtr {
            const unsigned g0 = std::max(2u, len * 62 / 100);
            const unsigned meta = std::max(2u, len * 74 / 100);
            return std::make_unique<TwoBcGskewPredictor>(
                TwoBcGskewConfig::symmetric(log2_entries, 0, g0, meta,
                                            len, "2bcgskew"));
        };
    };

    const std::vector<Scheme> schemes = {
        {"2Bc-gskew 256Kb", 15, gskew(15)},
        {"2Bc-gskew 512Kb", 16, gskew(16)},
        {"gshare 2Mb", 20,
         [](unsigned len) {
             return makePredictor("gshare:20:" + std::to_string(len));
         }},
        {"YAGS 288Kb", 14,
         [](unsigned len) {
             return makePredictor("yags:14:14:" + std::to_string(len));
         }},
        {"bi-mode 544Kb", 17,
         [](unsigned len) {
             return makePredictor("bimode:17:14:" + std::to_string(len));
         }},
    };

    TextTable table;
    std::vector<std::string> header{"configuration", "best len",
                                    "best misp/KI", "log2-size len",
                                    "log2 misp/KI", "extra misp/KI"};
    table.header(std::move(header));

    std::vector<std::string> extra_labels;
    std::vector<double> extra_values;
    for (const auto &scheme : schemes) {
        if (!benchQuiet())
            std::fprintf(stderr, "  sweeping %s ...\n", scheme.label);
        // The log2(size) point rides in the same sweep -- and so in
        // the same fused lane group -- as the candidate lengths: one
        // more lane on the shared suite walk, where a separate sweep
        // call would walk the whole suite again for that single
        // configuration. Appending keeps the point order (and every
        // artifact) identical to the two-call form.
        std::vector<unsigned> sweep_lengths = lengths;
        bool have_log2 = false;
        for (unsigned len : lengths)
            have_log2 |= len == scheme.log2Size;
        if (!have_log2)
            sweep_lengths.push_back(scheme.log2Size);
        auto points = sweepHistoryLengths(runner, scheme.make,
                                          sweep_lengths, ghist);

        const SweepPoint &best = bestPoint(points);
        double log2_value = 0;
        for (const auto &p : points) {
            if (p.histLen == scheme.log2Size)
                log2_value = p.avgMispKI;
        }
        const double extra = log2_value - best.avgMispKI;
        table.row({scheme.label, std::to_string(best.histLen),
                   fmt(best.avgMispKI, 3), std::to_string(scheme.log2Size),
                   fmt(log2_value, 3), fmt(extra, 3)});
        ctx.recordRow(scheme.label, 0,
                      {"best_len", "best_mispki", "log2_len",
                       "log2_mispki", "extra_mispki"},
                      {double(best.histLen), best.avgMispKI,
                       double(scheme.log2Size), log2_value, extra});
        extra_labels.push_back(scheme.label);
        extra_values.push_back(extra);
    }

    if (!benchQuiet()) {
        std::printf("Best (swept) history length vs. the conventional "
                    "log2(table size) choice:\n\n%s\n",
                    table.render().c_str());
        std::printf("%s\n",
                    renderBarChart("ADDITIONAL misp/KI from the "
                                   "log2(size) history length:",
                                   extra_labels, extra_values)
                        .c_str());
    }

    printShapeNotes({
        "the best history length meets or exceeds log2(table size) for "
        "the large schemes; for 2Bc-gskew the optimum G1 length sits "
        "clearly above it (Section 5.3)",
        "forcing log2(size) costs extra mispredictions (non-negative "
        "bars by construction of the sweep)",
        "the optimum grows with trace length: at the paper's 100M-"
        "instruction scale the best lengths were 23-27 bits for the "
        "256-512 Kbit 2Bc-gskew",
    });
    return ctx.finish();
}
