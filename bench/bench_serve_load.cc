/**
 * @file
 * Serve client: drives a bench_serve daemon (or an in-process
 * PredictionServer) over the ev8-serve-v1 line protocol.
 *
 * Two modes:
 *
 *  - parity (default): open one session on a named grid, wait for the
 *    full result payload, and merge it through the exact batch merge
 *    loop -- metrics merged and events replayed in cell-index order,
 *    failures recorded as structured partial results. The --json/--csv
 *    /--events artifacts are byte-identical (telemetry masked) to the
 *    batch binary for the same grid; CI's serve gate compares them.
 *  - load (--sessions=<N>): open N sessions concurrently, poll
 *    snapshots while they run, and report aggregate throughput plus
 *    p50/p95/p99 RPC latency. The artifact rows carry the numbers.
 *
 * `--connect=<socket>` talks to a daemon over AF_UNIX and
 * `--connect-tcp=<host:port>` over TCP; without either the client
 * embeds its own PredictionServer, which is the loopback used by tests
 * (same transport framing: the ring + packet codec still carry every
 * block). The artifacts are byte-identical across all three.
 *
 * Hostile-network behavior: connects retry with bounded exponential
 * backoff (the EV8_RETRY_MAX / EV8_RETRY_BASE_MS envelope the cell
 * executor already obeys); a typed busy refusal is retried after the
 * server's retry_after_ms hint, up to EV8_RETRY_MAX times; a draining
 * refusal is terminal ("go elsewhere"); and `--timeout=<ms>` puts an
 * overall deadline on the run, enforced at every socket read.
 *
 * Exit codes: 0 clean, 2 bad usage/env, 3 the served session reported
 * cell failures (artifacts written, partial), 4 transport or artifact
 * I/O failure mid-run (the connection existed and then broke), 5 the
 * daemon could not be reached at all (connection refused after
 * retries), 6 the --timeout deadline expired, 7 the daemon shed the
 * client (busy past retries, or draining). In load mode, when workers
 * fail in different classes the highest-numbered class wins.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "common/env.hh"
#include "common/table.hh"
#include "obs/json.hh"
#include "serve/grids.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/transport.hh"
#include "sim/cell_executor.hh"
#include "sim/checkpoint.hh"
#include "workloads/synthetic_program.hh"

using namespace ev8;

namespace
{

// This binary's exit-code extensions past the shared bench table:
// refused / timed out / shed are operationally different failures (is
// the daemon down, is the network slow, or is it overloaded?) and
// scripts branch on them.
constexpr int kExitRefused = 5; //!< could not connect at all
constexpr int kExitTimeout = 6; //!< the --timeout deadline expired
constexpr int kExitShed = 7;    //!< daemon busy past retries / draining

/** Connection could never be established (exit kExitRefused). */
class RefusedError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The --timeout deadline expired (exit kExitTimeout). */
class TimeoutError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The daemon shed the client: busy or draining (exit kExitShed). */
class ShedError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** A typed {"ok":false,"busy":true,...} reply (internal; retried). */
class BusyError : public std::runtime_error
{
  public:
    BusyError(const std::string &what, uint64_t retry_after_ms)
        : std::runtime_error(what), retryAfterMs(retry_after_ms)
    {
    }

    uint64_t retryAfterMs;
};

using Clock = std::chrono::steady_clock;

/** Where the daemon lives; neither field set = in-process loopback. */
struct Endpoint
{
    std::string unixPath;
    std::string tcpHost;
    uint16_t tcpPort = 0;

    bool tcp() const { return !tcpHost.empty(); }
    bool remote() const { return tcp() || !unixPath.empty(); }

    std::string
    describe() const
    {
        return tcp() ? tcpHost + ":" + std::to_string(tcpPort)
                     : unixPath;
    }
};

/** One request/reply lane: in-process handle() or a socket channel. */
class Rpc
{
  public:
    /** In-process lane over @p local (--timeout does not apply). */
    explicit Rpc(PredictionServer &local) : local_(&local) {}

    /**
     * Socket lane. Connects with bounded exponential-backoff retries
     * (EV8_RETRY_MAX attempts, EV8_RETRY_BASE_MS base); throws
     * RefusedError when every attempt fails, TimeoutError when
     * @p deadline (time_point{} = none) expires first.
     */
    Rpc(const Endpoint &endpoint, Clock::time_point deadline)
        : endpoint_(endpoint), deadline_(deadline)
    {
        const unsigned attempts = CellExecutor::retryMax();
        const unsigned baseMs = CellExecutor::retryBaseMs();
        std::string err;
        for (unsigned a = 1;; ++a) {
            const int fd = endpoint_.tcp()
                ? serveio::connectTcp(endpoint_.tcpHost,
                                      endpoint_.tcpPort, err)
                : serveio::connectUnix(endpoint_.unixPath, err);
            if (fd >= 0) {
                channel_ = std::make_unique<serveio::LineChannel>(
                    fd, serveio::kMaxReplyLine);
                return;
            }
            if (a >= attempts) {
                throw RefusedError("cannot connect to "
                                   + endpoint_.describe() + " after "
                                   + std::to_string(attempts)
                                   + " attempt(s): " + err);
            }
            checkDeadline("connect");
            // The cell executor's backoff discipline, reused verbatim:
            // base << (attempt-1), capped at 1 s.
            const uint64_t ms = std::min<uint64_t>(
                uint64_t{baseMs} << (a - 1), 1000);
            std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        }
    }

    /**
     * Round-trips one request and returns the parsed reply object.
     * Throws std::runtime_error on transport loss and plain
     * {"ok":false,...} errors, BusyError / ShedError on the typed
     * refusals, TimeoutError past the deadline.
     */
    JsonValue
    call(const ServeRequest &req)
    {
        const std::string line = encodeRequest(req);
        std::string reply;
        if (local_) {
            reply = local_->handle(line);
        } else {
            if (!channel_->writeLine(line)) {
                throw std::runtime_error(
                    "server connection lost during '" + req.op + "'");
            }
            const serveio::LineStatus st =
                channel_->readLine(reply, remainingMs());
            if (st == serveio::LineStatus::Timeout) {
                throw TimeoutError("deadline expired waiting for '"
                                   + req.op + "' reply");
            }
            if (st != serveio::LineStatus::Ok) {
                throw std::runtime_error(
                    "server connection lost during '" + req.op + "' ("
                    + serveio::lineStatusName(st) + ")");
            }
        }
        JsonValue doc = parseJson(reply);
        if (!doc.isObject())
            throw std::runtime_error("reply is not a JSON object");
        const JsonValue *ok = doc.find("ok");
        if (!ok || ok->kind != JsonValue::Kind::Bool)
            throw std::runtime_error("reply lacks an 'ok' field");
        if (!ok->boolean) {
            const JsonValue *err = doc.find("error");
            const std::string message = err && err->isString()
                ? err->text
                : std::string("unknown");
            const JsonValue *draining = doc.find("draining");
            if (draining && draining->kind == JsonValue::Kind::Bool
                && draining->boolean) {
                throw ShedError("server is draining: " + message);
            }
            const JsonValue *busy = doc.find("busy");
            if (busy && busy->kind == JsonValue::Kind::Bool
                && busy->boolean) {
                const JsonValue *hint = doc.find("retry_after_ms");
                const uint64_t after = hint && hint->isNumber()
                    ? static_cast<uint64_t>(hint->number)
                    : 250;
                throw BusyError(message, after);
            }
            throw std::runtime_error("server error: " + message);
        }
        return doc;
    }

  private:
    /** Poll budget until the deadline; -1 = no deadline (block). */
    int
    remainingMs() const
    {
        if (deadline_ == Clock::time_point{})
            return -1;
        const auto left = std::chrono::duration_cast<
            std::chrono::milliseconds>(deadline_ - Clock::now());
        return left.count() > 0 ? static_cast<int>(left.count()) : 0;
    }

    void
    checkDeadline(const char *what) const
    {
        if (remainingMs() == 0) {
            throw TimeoutError(std::string("deadline expired during ")
                               + what);
        }
    }

    PredictionServer *local_ = nullptr;
    Endpoint endpoint_;
    Clock::time_point deadline_{};
    std::unique_ptr<serveio::LineChannel> channel_;
};

/**
 * An "open" with overload manners: a typed busy refusal is retried
 * after the server's retry_after_ms hint, up to EV8_RETRY_MAX tries,
 * then surfaces as ShedError. Draining refusals pass straight through
 * (Rpc::call already throws ShedError for them).
 */
JsonValue
callAdmitting(Rpc &rpc, const ServeRequest &open)
{
    const unsigned attempts = CellExecutor::retryMax();
    for (unsigned a = 1;; ++a) {
        try {
            return rpc.call(open);
        } catch (const BusyError &busy) {
            if (a >= attempts) {
                throw ShedError("admission refused after "
                                + std::to_string(attempts)
                                + " attempt(s): " + busy.what());
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(busy.retryAfterMs));
        }
    }
}

ServeRequest
sessionOp(const std::string &op, const std::string &session)
{
    ServeRequest req;
    req.op = op;
    req.session = session;
    return req;
}

uint64_t
u64Member(const JsonValue &obj, const char *name)
{
    const JsonValue *v = obj.find(name);
    if (!v || !v->isNumber())
        throw std::runtime_error(std::string("reply field '") + name
                                 + "' is not a number");
    return static_cast<uint64_t>(v->number);
}

/**
 * Merges one wait reply into @p ctx exactly as the engine's merge loop
 * would have: restored cells in index order (metrics merge, then event
 * replay under the rebuilt pc->class map), wire failures as placeholder
 * results plus recordFailure, then one recordResults row per grid row.
 * Returns the per-row results (for the human table).
 */
std::vector<std::vector<BenchResult>>
mergeResults(BenchContext &ctx, const GridSpec &grid,
             const JsonValue &done)
{
    const auto &suite = specint95Suite();
    const size_t nbench = suite.size();
    const size_t n = grid.rows.size() * nbench;

    const JsonValue &cells = done.at("cells");
    const JsonValue &failures = done.at("failures");
    if (!cells.isArray() || cells.items.size() != n)
        throw std::runtime_error("wait reply has wrong cell count");
    if (!failures.isArray())
        throw std::runtime_error("wait reply lacks a failures array");

    std::vector<CellFailure> wireFailures;
    std::set<size_t> failedCells;
    for (const JsonValue &item : failures.items) {
        CellFailure f = readFailure(item);
        size_t b = 0;
        while (b < nbench && suite[b].profile.name != f.bench)
            ++b;
        if (f.row >= grid.rows.size() || b == nbench)
            throw std::runtime_error("failure record names an unknown "
                                     "cell");
        failedCells.insert(f.row * nbench + b);
        wireFailures.push_back(std::move(f));
    }

    std::vector<GridCheckpoint::RestoredCell> restored(n);
    for (const JsonValue &item : cells.items) {
        if (!item.isString())
            throw std::runtime_error("cell record is not a string");
        GridCheckpoint::RestoredCell cell;
        const size_t idx = decodeCellRecord(item.text, n, cell);
        restored[idx] = std::move(cell);
    }

    // The pc -> class maps are a pure function of the benchmark and are
    // not shipped; rebuild them once per benchmark for event replay.
    std::vector<BranchClassMap> classCache(nbench);
    std::vector<char> haveClass(nbench, 0);
    MispredictSink *sink = ctx.eventSink();

    std::vector<std::vector<BenchResult>> all(grid.rows.size());
    for (auto &row : all)
        row.reserve(nbench);
    for (size_t i = 0; i < n; ++i) {
        const size_t b = i % nbench;
        if (failedCells.count(i)) {
            BenchResult r;
            r.bench = suite[b].profile.name;
            r.failed = true;
            all[i / nbench].push_back(std::move(r));
            continue;
        }
        GridCheckpoint::RestoredCell &cell = restored[i];
        ctx.metrics().merge(cell.metrics);
        if (sink) {
            if (!haveClass[b]) {
                classCache[b] = SyntheticProgram(suite[b].profile)
                                    .condBranchClasses();
                haveClass[b] = 1;
            }
            sink->setBench(cell.result.bench);
            sink->setClassifier(&classCache[b]);
            for (const MispredictEvent &event : cell.events)
                sink->onMispredict(event);
            sink->setClassifier(nullptr);
        }
        all[i / nbench].push_back(std::move(cell.result));
    }

    for (const CellFailure &f : wireFailures) {
        BenchFailureExport e;
        e.rowLabel = f.rowLabel;
        e.bench = f.bench;
        e.attempts = f.attempts;
        e.error = f.error;
        e.attemptNs = f.attemptNs;
        ctx.recordFailure(std::move(e));
    }

    const std::vector<uint64_t> storage = gridStorageBits(grid);
    for (size_t r = 0; r < grid.rows.size(); ++r)
        ctx.recordResults(grid.rows[r].label, storage[r], all[r]);
    return all;
}

void
printServedTable(const GridSpec &grid,
                 const std::vector<std::vector<BenchResult>> &all)
{
    if (benchQuiet())
        return;
    TextTable table;
    std::vector<std::string> header{"configuration"};
    for (const Benchmark &b : specint95Suite())
        header.push_back(b.profile.name);
    header.push_back("amean");
    table.header(std::move(header));
    char buf[32];
    for (size_t r = 0; r < all.size(); ++r) {
        std::vector<std::string> cells{grid.rows[r].label};
        for (const BenchResult &res : all[r]) {
            if (res.failed) {
                cells.push_back("!!");
            } else {
                std::snprintf(buf, sizeof buf, "%.2f",
                              res.sim.stats.mispKI());
                cells.push_back(buf);
            }
        }
        std::snprintf(buf, sizeof buf, "%.3f",
                      SuiteRunner::averageMispKI(all[r]));
        cells.push_back(buf);
        table.row(std::move(cells));
    }
    std::printf("served misp/KI (merged from the wire payload):\n\n%s\n",
                table.render().c_str());
}

/** One session opened, started, waited on, and merged into @p ctx. */
int
runParity(BenchContext &ctx, const GridSpec &grid, Rpc &rpc,
          const std::string &session)
{
    ServeRequest open = sessionOp("open", session);
    open.grid = grid.id;
    open.wantEvents = ctx.eventSink() != nullptr;
    open.wantMetrics = true;
    open.timing = ctx.args().timing && ctx.args().wantsArtifacts();
    callAdmitting(rpc, open);
    rpc.call(sessionOp("start", session));

    if (ctx.args().progress) {
        for (;;) {
            const JsonValue snap =
                rpc.call(sessionOp("snapshot", session));
            const uint64_t total = u64Member(snap, "cells_total");
            const uint64_t doneCells = u64Member(snap, "cells_done");
            std::fprintf(stderr, "\r%s: %llu/%llu cells",
                         session.c_str(),
                         static_cast<unsigned long long>(doneCells),
                         static_cast<unsigned long long>(total));
            const JsonValue *state = snap.find("state");
            if (state && state->isString() && state->text == "done")
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        std::fputc('\n', stderr);
    }

    const JsonValue done = rpc.call(sessionOp("wait", session));
    const auto all = mergeResults(ctx, grid, done);
    printServedTable(grid, all);
    return ctx.finish();
}

/** Per-session tallies of one load-mode worker. */
struct LoadResult
{
    double wallMs = 0.0;
    uint64_t branches = 0;
    uint64_t failedCells = 0;
    std::vector<double> rpcMs;
    std::string error;  //!< non-empty when the worker died
    int errorExit = 0;  //!< the exit class of that death
};

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank = p / 100.0 * static_cast<double>(sorted.size());
    size_t idx = static_cast<size_t>(std::ceil(rank));
    idx = std::min(std::max<size_t>(idx, 1), sorted.size()) - 1;
    return sorted[idx];
}

/**
 * Load mode: @p nsessions concurrent sessions, each on its own RPC
 * lane (its own socket connection against a daemon), snapshot-polled
 * while running. Reports throughput and RPC latency percentiles both
 * as artifact rows and on stdout.
 */
int
runLoad(BenchContext &ctx, const GridSpec &grid, size_t nsessions,
        const Endpoint &endpoint, PredictionServer *local,
        const std::string &sessionBase, Clock::time_point deadline)
{
    const auto ms = [](Clock::duration d) {
        return std::chrono::duration<double, std::milli>(d).count();
    };

    std::vector<LoadResult> results(nsessions);
    const auto worker = [&](size_t k) {
        LoadResult &out = results[k];
        const std::string session =
            sessionBase + "." + std::to_string(k + 1);
        try {
            std::unique_ptr<Rpc> rpc = local
                ? std::make_unique<Rpc>(*local)
                : std::make_unique<Rpc>(endpoint, deadline);
            const auto timed = [&](const ServeRequest &req) {
                const auto t0 = Clock::now();
                JsonValue reply = rpc->call(req);
                out.rpcMs.push_back(ms(Clock::now() - t0));
                return reply;
            };

            const auto start = Clock::now();
            ServeRequest open = sessionOp("open", session);
            open.grid = grid.id;
            open.wantEvents = false;
            open.wantMetrics = true;
            open.timing = false;
            {
                const auto t0 = Clock::now();
                callAdmitting(*rpc, open);
                out.rpcMs.push_back(ms(Clock::now() - t0));
            }
            timed(sessionOp("start", session));
            for (;;) {
                const JsonValue snap =
                    timed(sessionOp("snapshot", session));
                const JsonValue *state = snap.find("state");
                if (state && state->isString()
                    && state->text == "done")
                    break;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
            const JsonValue done = timed(sessionOp("wait", session));
            out.wallMs = ms(Clock::now() - start);

            const JsonValue &cells = done.at("cells");
            const size_t n = cells.items.size();
            for (const JsonValue &item : cells.items) {
                GridCheckpoint::RestoredCell cell;
                decodeCellRecord(item.text, n, cell);
                out.branches += cell.result.sim.condBranches;
            }
            out.failedCells = done.at("failures").items.size();
        } catch (const RefusedError &err) {
            out.error = err.what();
            out.errorExit = kExitRefused;
        } catch (const TimeoutError &err) {
            out.error = err.what();
            out.errorExit = kExitTimeout;
        } catch (const ShedError &err) {
            out.error = err.what();
            out.errorExit = kExitShed;
        } catch (const std::exception &err) {
            out.error = err.what();
            out.errorExit = kExitFatal;
        }
    };

    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(nsessions);
    for (size_t k = 0; k < nsessions; ++k)
        threads.emplace_back(worker, k);
    for (std::thread &t : threads)
        t.join();
    const double wallMs = ms(Clock::now() - t0);

    uint64_t branches = 0;
    uint64_t failedCells = 0;
    size_t errors = 0;
    int errorExit = 0;
    std::vector<double> rpc;
    for (size_t k = 0; k < nsessions; ++k) {
        const LoadResult &r = results[k];
        if (!r.error.empty()) {
            ++errors;
            errorExit = std::max(errorExit, r.errorExit);
            std::fprintf(stderr, "bench_serve_load: session %zu: %s\n",
                         k + 1, r.error.c_str());
            continue;
        }
        branches += r.branches;
        failedCells += r.failedCells;
        rpc.insert(rpc.end(), r.rpcMs.begin(), r.rpcMs.end());
        ctx.recordRow(sessionBase + "." + std::to_string(k + 1), 0,
                      {"wall_ms", "branches", "failed_cells"},
                      {r.wallMs, static_cast<double>(r.branches),
                       static_cast<double>(r.failedCells)});
    }
    std::sort(rpc.begin(), rpc.end());
    const double p50 = percentile(rpc, 50.0);
    const double p95 = percentile(rpc, 95.0);
    const double p99 = percentile(rpc, 99.0);
    const double mbrs =
        wallMs > 0.0 ? static_cast<double>(branches) / (wallMs * 1e3)
                     : 0.0;
    ctx.recordRow("load", 0,
                  {"sessions", "wall_ms", "branches", "mbranch_per_s",
                   "rpc_p50_ms", "rpc_p95_ms", "rpc_p99_ms",
                   "failed_cells"},
                  {static_cast<double>(nsessions), wallMs,
                   static_cast<double>(branches), mbrs, p50, p95, p99,
                   static_cast<double>(failedCells)});

    if (!benchQuiet()) {
        std::printf("load: %zu session(s), %.0f ms wall, %llu branches "
                    "(%.2f Mbr/s)\n",
                    nsessions, wallMs,
                    static_cast<unsigned long long>(branches), mbrs);
        std::printf("rpc latency over %zu calls: p50 %.3f ms, "
                    "p95 %.3f ms, p99 %.3f ms\n\n",
                    rpc.size(), p50, p95, p99);
    }

    const int artifacts = ctx.finish();
    if (errors > 0)
        return errorExit != 0 ? errorExit : kExitFatal;
    if (artifacts != kExitOk)
        return artifacts;
    return failedCells == 0 ? kExitOk : kExitPartial;
}

} // namespace

int
main(int argc, char **argv)
{
    // The grid decides the banner/artifact identity, so resolve it
    // before BenchContext parses (and may already act on) the argv.
    std::string gridId = "fig5";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--grid=", 7) == 0)
            gridId = argv[i] + 7;
    }
    const GridSpec *grid = findGrid(gridId);
    if (!grid) {
        std::fprintf(stderr, "bench_serve_load: unknown grid '%s' "
                             "(known:",
                     gridId.c_str());
        for (const std::string &id : knownGrids())
            std::fprintf(stderr, " %s", id.c_str());
        std::fprintf(stderr, ")\n");
        return kExitUsage;
    }

    Endpoint endpoint;
    std::string connectTcp;
    std::string sessionName = "s1";
    std::string sessionsArg;
    std::string timeoutArg;
    const BenchOptionHandler extra = [&](const char *arg) {
        const auto value = [&](const char *opt) -> const char * {
            const size_t len = std::strlen(opt);
            if (std::strncmp(arg, opt, len) == 0 && arg[len] == '=')
                return arg + len + 1;
            return nullptr;
        };
        if (value("--grid"))
            return true; // pre-scanned above
        if (const char *v = value("--connect-tcp")) {
            connectTcp = v;
            return true;
        }
        if (const char *v = value("--connect")) {
            endpoint.unixPath = v;
            return true;
        }
        if (const char *v = value("--session")) {
            sessionName = v;
            return true;
        }
        if (const char *v = value("--sessions")) {
            sessionsArg = v;
            return true;
        }
        if (const char *v = value("--timeout")) {
            timeoutArg = v;
            return true;
        }
        return false;
    };

    BenchContext ctx(
        argc, argv, grid->benchId, grid->title, extra,
        "  --grid=<id>        named grid to serve (default: fig5)\n"
        "  --connect=<path>   bench_serve AF_UNIX socket (default:\n"
        "                     embed an in-process server)\n"
        "  --connect-tcp=<host:port>\n"
        "                     bench_serve TCP endpoint\n"
        "  --session=<name>   session name / load-mode name prefix\n"
        "                     (default: s1)\n"
        "  --sessions=<N>     load mode: N concurrent sessions with\n"
        "                     RPC latency percentiles\n"
        "  --timeout=<ms>     overall deadline for socket modes\n"
        "                     (default 0 = none); expiry exits 6\n");

    if (!connectTcp.empty()) {
        if (!endpoint.unixPath.empty()) {
            std::fprintf(stderr,
                         "bench_serve_load: --connect and "
                         "--connect-tcp are mutually exclusive\n");
            return kExitUsage;
        }
        std::string err;
        if (!serveio::parseHostPort(connectTcp, endpoint.tcpHost,
                                    endpoint.tcpPort, err)) {
            std::fprintf(stderr,
                         "bench_serve_load: bad --connect-tcp value: "
                         "%s\n",
                         err.c_str());
            return kExitUsage;
        }
    }

    Clock::time_point deadline{};
    if (!timeoutArg.empty()) {
        try {
            const uint64_t ms =
                parseStrictU64(timeoutArg, 0, 86400000);
            if (ms > 0)
                deadline = Clock::now() + std::chrono::milliseconds(ms);
        } catch (const std::exception &err) {
            std::fprintf(stderr,
                         "bench_serve_load: bad value for --timeout: "
                         "%s\n",
                         err.what());
            return kExitUsage;
        }
    }

    size_t nsessions = 0;
    if (!sessionsArg.empty()) {
        try {
            nsessions =
                static_cast<size_t>(parseStrictU64(sessionsArg, 1, 256));
        } catch (const std::exception &err) {
            std::fprintf(stderr,
                         "bench_serve_load: bad value for --sessions: "
                         "%s\n",
                         err.what());
            return kExitUsage;
        }
    }

    std::unique_ptr<PredictionServer> local;
    if (!endpoint.remote()) {
        ServeLimits limits = PredictionServer::defaultLimits();
        limits.maxSessions = std::max(limits.maxSessions,
                                      std::max<size_t>(nsessions, 1));
        local = std::make_unique<PredictionServer>(limits,
                                                   ctx.args().jobs);
    }

    try {
        if (nsessions > 0) {
            return runLoad(ctx, *grid, nsessions, endpoint, local.get(),
                           sessionName, deadline);
        }
        Rpc rpc = local ? Rpc(*local) : Rpc(endpoint, deadline);
        return runParity(ctx, *grid, rpc, sessionName);
    } catch (const RefusedError &err) {
        std::fprintf(stderr,
                     "bench_serve_load: connection refused: %s\n",
                     err.what());
        return kExitRefused;
    } catch (const TimeoutError &err) {
        std::fprintf(stderr, "bench_serve_load: timed out: %s\n",
                     err.what());
        return kExitTimeout;
    } catch (const ShedError &err) {
        std::fprintf(stderr, "bench_serve_load: shed by server: %s\n",
                     err.what());
        return kExitShed;
    } catch (const std::exception &err) {
        std::fprintf(stderr, "bench_serve_load: %s\n", err.what());
        return kExitFatal;
    }
}
