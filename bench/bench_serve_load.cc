/**
 * @file
 * Serve client: drives a bench_serve daemon (or an in-process
 * PredictionServer) over the ev8-serve-v1 line protocol.
 *
 * Two modes:
 *
 *  - parity (default): open one session on a named grid, wait for the
 *    full result payload, and merge it through the exact batch merge
 *    loop -- metrics merged and events replayed in cell-index order,
 *    failures recorded as structured partial results. The --json/--csv
 *    /--events artifacts are byte-identical (telemetry masked) to the
 *    batch binary for the same grid; CI's serve gate compares them.
 *  - load (--sessions=<N>): open N sessions concurrently, poll
 *    snapshots while they run, and report aggregate throughput plus
 *    p50/p95/p99 RPC latency. The artifact rows carry the numbers.
 *
 * `--connect=<socket>` talks to a daemon; without it the client embeds
 * its own PredictionServer, which is the loopback used by tests (same
 * transport framing: the ring + packet codec still carry every block).
 *
 * Exit codes: 0 clean, 2 bad usage/env, 3 the served session reported
 * cell failures (artifacts written, partial), 4 transport or artifact
 * I/O failure.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "common/env.hh"
#include "common/table.hh"
#include "obs/json.hh"
#include "serve/grids.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve_io.hh"
#include "sim/checkpoint.hh"
#include "workloads/synthetic_program.hh"

using namespace ev8;

namespace
{

/** One request/reply lane: in-process handle() or a socket channel. */
class Rpc
{
  public:
    /** In-process lane over @p local. */
    explicit Rpc(PredictionServer &local) : local_(&local) {}

    /** Socket lane; throws std::runtime_error when connect fails. */
    explicit Rpc(const std::string &path)
    {
        std::string err;
        const int fd = serveio::connectUnix(path, err);
        if (fd < 0)
            throw std::runtime_error(err);
        channel_ = std::make_unique<serveio::LineChannel>(fd);
    }

    /**
     * Round-trips one request and returns the parsed reply object.
     * Throws std::runtime_error on transport loss, malformed replies,
     * and {"ok":false,...} errors.
     */
    JsonValue
    call(const ServeRequest &req)
    {
        const std::string line = encodeRequest(req);
        std::string reply;
        if (local_) {
            reply = local_->handle(line);
        } else {
            if (!channel_->writeLine(line)
                || !channel_->readLine(reply)) {
                throw std::runtime_error(
                    "server connection lost during '" + req.op + "'");
            }
        }
        JsonValue doc = parseJson(reply);
        if (!doc.isObject())
            throw std::runtime_error("reply is not a JSON object");
        const JsonValue *ok = doc.find("ok");
        if (!ok || ok->kind != JsonValue::Kind::Bool)
            throw std::runtime_error("reply lacks an 'ok' field");
        if (!ok->boolean) {
            const JsonValue *err = doc.find("error");
            throw std::runtime_error("server error: "
                                     + (err && err->isString()
                                            ? err->text
                                            : std::string("unknown")));
        }
        return doc;
    }

  private:
    PredictionServer *local_ = nullptr;
    std::unique_ptr<serveio::LineChannel> channel_;
};

ServeRequest
sessionOp(const std::string &op, const std::string &session)
{
    ServeRequest req;
    req.op = op;
    req.session = session;
    return req;
}

uint64_t
u64Member(const JsonValue &obj, const char *name)
{
    const JsonValue *v = obj.find(name);
    if (!v || !v->isNumber())
        throw std::runtime_error(std::string("reply field '") + name
                                 + "' is not a number");
    return static_cast<uint64_t>(v->number);
}

/**
 * Merges one wait reply into @p ctx exactly as the engine's merge loop
 * would have: restored cells in index order (metrics merge, then event
 * replay under the rebuilt pc->class map), wire failures as placeholder
 * results plus recordFailure, then one recordResults row per grid row.
 * Returns the per-row results (for the human table).
 */
std::vector<std::vector<BenchResult>>
mergeResults(BenchContext &ctx, const GridSpec &grid,
             const JsonValue &done)
{
    const auto &suite = specint95Suite();
    const size_t nbench = suite.size();
    const size_t n = grid.rows.size() * nbench;

    const JsonValue &cells = done.at("cells");
    const JsonValue &failures = done.at("failures");
    if (!cells.isArray() || cells.items.size() != n)
        throw std::runtime_error("wait reply has wrong cell count");
    if (!failures.isArray())
        throw std::runtime_error("wait reply lacks a failures array");

    std::vector<CellFailure> wireFailures;
    std::set<size_t> failedCells;
    for (const JsonValue &item : failures.items) {
        CellFailure f = readFailure(item);
        size_t b = 0;
        while (b < nbench && suite[b].profile.name != f.bench)
            ++b;
        if (f.row >= grid.rows.size() || b == nbench)
            throw std::runtime_error("failure record names an unknown "
                                     "cell");
        failedCells.insert(f.row * nbench + b);
        wireFailures.push_back(std::move(f));
    }

    std::vector<GridCheckpoint::RestoredCell> restored(n);
    for (const JsonValue &item : cells.items) {
        if (!item.isString())
            throw std::runtime_error("cell record is not a string");
        GridCheckpoint::RestoredCell cell;
        const size_t idx = decodeCellRecord(item.text, n, cell);
        restored[idx] = std::move(cell);
    }

    // The pc -> class maps are a pure function of the benchmark and are
    // not shipped; rebuild them once per benchmark for event replay.
    std::vector<BranchClassMap> classCache(nbench);
    std::vector<char> haveClass(nbench, 0);
    MispredictSink *sink = ctx.eventSink();

    std::vector<std::vector<BenchResult>> all(grid.rows.size());
    for (auto &row : all)
        row.reserve(nbench);
    for (size_t i = 0; i < n; ++i) {
        const size_t b = i % nbench;
        if (failedCells.count(i)) {
            BenchResult r;
            r.bench = suite[b].profile.name;
            r.failed = true;
            all[i / nbench].push_back(std::move(r));
            continue;
        }
        GridCheckpoint::RestoredCell &cell = restored[i];
        ctx.metrics().merge(cell.metrics);
        if (sink) {
            if (!haveClass[b]) {
                classCache[b] = SyntheticProgram(suite[b].profile)
                                    .condBranchClasses();
                haveClass[b] = 1;
            }
            sink->setBench(cell.result.bench);
            sink->setClassifier(&classCache[b]);
            for (const MispredictEvent &event : cell.events)
                sink->onMispredict(event);
            sink->setClassifier(nullptr);
        }
        all[i / nbench].push_back(std::move(cell.result));
    }

    for (const CellFailure &f : wireFailures) {
        BenchFailureExport e;
        e.rowLabel = f.rowLabel;
        e.bench = f.bench;
        e.attempts = f.attempts;
        e.error = f.error;
        e.attemptNs = f.attemptNs;
        ctx.recordFailure(std::move(e));
    }

    const std::vector<uint64_t> storage = gridStorageBits(grid);
    for (size_t r = 0; r < grid.rows.size(); ++r)
        ctx.recordResults(grid.rows[r].label, storage[r], all[r]);
    return all;
}

void
printServedTable(const GridSpec &grid,
                 const std::vector<std::vector<BenchResult>> &all)
{
    if (benchQuiet())
        return;
    TextTable table;
    std::vector<std::string> header{"configuration"};
    for (const Benchmark &b : specint95Suite())
        header.push_back(b.profile.name);
    header.push_back("amean");
    table.header(std::move(header));
    char buf[32];
    for (size_t r = 0; r < all.size(); ++r) {
        std::vector<std::string> cells{grid.rows[r].label};
        for (const BenchResult &res : all[r]) {
            if (res.failed) {
                cells.push_back("!!");
            } else {
                std::snprintf(buf, sizeof buf, "%.2f",
                              res.sim.stats.mispKI());
                cells.push_back(buf);
            }
        }
        std::snprintf(buf, sizeof buf, "%.3f",
                      SuiteRunner::averageMispKI(all[r]));
        cells.push_back(buf);
        table.row(std::move(cells));
    }
    std::printf("served misp/KI (merged from the wire payload):\n\n%s\n",
                table.render().c_str());
}

/** One session opened, started, waited on, and merged into @p ctx. */
int
runParity(BenchContext &ctx, const GridSpec &grid, Rpc &rpc,
          const std::string &session)
{
    ServeRequest open = sessionOp("open", session);
    open.grid = grid.id;
    open.wantEvents = ctx.eventSink() != nullptr;
    open.wantMetrics = true;
    open.timing = ctx.args().timing && ctx.args().wantsArtifacts();
    rpc.call(open);
    rpc.call(sessionOp("start", session));

    if (ctx.args().progress) {
        for (;;) {
            const JsonValue snap =
                rpc.call(sessionOp("snapshot", session));
            const uint64_t total = u64Member(snap, "cells_total");
            const uint64_t doneCells = u64Member(snap, "cells_done");
            std::fprintf(stderr, "\r%s: %llu/%llu cells",
                         session.c_str(),
                         static_cast<unsigned long long>(doneCells),
                         static_cast<unsigned long long>(total));
            const JsonValue *state = snap.find("state");
            if (state && state->isString() && state->text == "done")
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        std::fputc('\n', stderr);
    }

    const JsonValue done = rpc.call(sessionOp("wait", session));
    const auto all = mergeResults(ctx, grid, done);
    printServedTable(grid, all);
    return ctx.finish();
}

/** Per-session tallies of one load-mode worker. */
struct LoadResult
{
    double wallMs = 0.0;
    uint64_t branches = 0;
    uint64_t failedCells = 0;
    std::vector<double> rpcMs;
    std::string error; //!< non-empty when the worker died
};

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank = p / 100.0 * static_cast<double>(sorted.size());
    size_t idx = static_cast<size_t>(std::ceil(rank));
    idx = std::min(std::max<size_t>(idx, 1), sorted.size()) - 1;
    return sorted[idx];
}

/**
 * Load mode: @p nsessions concurrent sessions, each on its own RPC
 * lane (its own socket connection against a daemon), snapshot-polled
 * while running. Reports throughput and RPC latency percentiles both
 * as artifact rows and on stdout.
 */
int
runLoad(BenchContext &ctx, const GridSpec &grid, size_t nsessions,
        const std::string &connectPath, PredictionServer *local,
        const std::string &sessionBase)
{
    using Clock = std::chrono::steady_clock;
    const auto ms = [](Clock::duration d) {
        return std::chrono::duration<double, std::milli>(d).count();
    };

    std::vector<LoadResult> results(nsessions);
    const auto worker = [&](size_t k) {
        LoadResult &out = results[k];
        const std::string session =
            sessionBase + "." + std::to_string(k + 1);
        try {
            std::unique_ptr<Rpc> rpc =
                local ? std::make_unique<Rpc>(*local)
                      : std::make_unique<Rpc>(connectPath);
            const auto timed = [&](const ServeRequest &req) {
                const auto t0 = Clock::now();
                JsonValue reply = rpc->call(req);
                out.rpcMs.push_back(ms(Clock::now() - t0));
                return reply;
            };

            const auto start = Clock::now();
            ServeRequest open = sessionOp("open", session);
            open.grid = grid.id;
            open.wantEvents = false;
            open.wantMetrics = true;
            open.timing = false;
            timed(open);
            timed(sessionOp("start", session));
            for (;;) {
                const JsonValue snap =
                    timed(sessionOp("snapshot", session));
                const JsonValue *state = snap.find("state");
                if (state && state->isString()
                    && state->text == "done")
                    break;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
            const JsonValue done = timed(sessionOp("wait", session));
            out.wallMs = ms(Clock::now() - start);

            const JsonValue &cells = done.at("cells");
            const size_t n = cells.items.size();
            for (const JsonValue &item : cells.items) {
                GridCheckpoint::RestoredCell cell;
                decodeCellRecord(item.text, n, cell);
                out.branches += cell.result.sim.condBranches;
            }
            out.failedCells = done.at("failures").items.size();
        } catch (const std::exception &err) {
            out.error = err.what();
        }
    };

    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(nsessions);
    for (size_t k = 0; k < nsessions; ++k)
        threads.emplace_back(worker, k);
    for (std::thread &t : threads)
        t.join();
    const double wallMs = ms(Clock::now() - t0);

    uint64_t branches = 0;
    uint64_t failedCells = 0;
    size_t errors = 0;
    std::vector<double> rpc;
    for (size_t k = 0; k < nsessions; ++k) {
        const LoadResult &r = results[k];
        if (!r.error.empty()) {
            ++errors;
            std::fprintf(stderr, "bench_serve_load: session %zu: %s\n",
                         k + 1, r.error.c_str());
            continue;
        }
        branches += r.branches;
        failedCells += r.failedCells;
        rpc.insert(rpc.end(), r.rpcMs.begin(), r.rpcMs.end());
        ctx.recordRow(sessionBase + "." + std::to_string(k + 1), 0,
                      {"wall_ms", "branches", "failed_cells"},
                      {r.wallMs, static_cast<double>(r.branches),
                       static_cast<double>(r.failedCells)});
    }
    std::sort(rpc.begin(), rpc.end());
    const double p50 = percentile(rpc, 50.0);
    const double p95 = percentile(rpc, 95.0);
    const double p99 = percentile(rpc, 99.0);
    const double mbrs =
        wallMs > 0.0 ? static_cast<double>(branches) / (wallMs * 1e3)
                     : 0.0;
    ctx.recordRow("load", 0,
                  {"sessions", "wall_ms", "branches", "mbranch_per_s",
                   "rpc_p50_ms", "rpc_p95_ms", "rpc_p99_ms",
                   "failed_cells"},
                  {static_cast<double>(nsessions), wallMs,
                   static_cast<double>(branches), mbrs, p50, p95, p99,
                   static_cast<double>(failedCells)});

    if (!benchQuiet()) {
        std::printf("load: %zu session(s), %.0f ms wall, %llu branches "
                    "(%.2f Mbr/s)\n",
                    nsessions, wallMs,
                    static_cast<unsigned long long>(branches), mbrs);
        std::printf("rpc latency over %zu calls: p50 %.3f ms, "
                    "p95 %.3f ms, p99 %.3f ms\n\n",
                    rpc.size(), p50, p95, p99);
    }

    const int artifacts = ctx.finish();
    if (errors > 0)
        return kExitFatal;
    if (artifacts != kExitOk)
        return artifacts;
    return failedCells == 0 ? kExitOk : kExitPartial;
}

} // namespace

int
main(int argc, char **argv)
{
    // The grid decides the banner/artifact identity, so resolve it
    // before BenchContext parses (and may already act on) the argv.
    std::string gridId = "fig5";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--grid=", 7) == 0)
            gridId = argv[i] + 7;
    }
    const GridSpec *grid = findGrid(gridId);
    if (!grid) {
        std::fprintf(stderr, "bench_serve_load: unknown grid '%s' "
                             "(known:",
                     gridId.c_str());
        for (const std::string &id : knownGrids())
            std::fprintf(stderr, " %s", id.c_str());
        std::fprintf(stderr, ")\n");
        return kExitUsage;
    }

    std::string connectPath;
    std::string sessionName = "s1";
    std::string sessionsArg;
    const BenchOptionHandler extra = [&](const char *arg) {
        const auto value = [&](const char *opt) -> const char * {
            const size_t len = std::strlen(opt);
            if (std::strncmp(arg, opt, len) == 0 && arg[len] == '=')
                return arg + len + 1;
            return nullptr;
        };
        if (value("--grid"))
            return true; // pre-scanned above
        if (const char *v = value("--connect")) {
            connectPath = v;
            return true;
        }
        if (const char *v = value("--session")) {
            sessionName = v;
            return true;
        }
        if (const char *v = value("--sessions")) {
            sessionsArg = v;
            return true;
        }
        return false;
    };

    BenchContext ctx(
        argc, argv, grid->benchId, grid->title, extra,
        "  --grid=<id>        named grid to serve (default: fig5)\n"
        "  --connect=<path>   bench_serve AF_UNIX socket (default:\n"
        "                     embed an in-process server)\n"
        "  --session=<name>   session name / load-mode name prefix\n"
        "                     (default: s1)\n"
        "  --sessions=<N>     load mode: N concurrent sessions with\n"
        "                     RPC latency percentiles\n");

    size_t nsessions = 0;
    if (!sessionsArg.empty()) {
        try {
            nsessions =
                static_cast<size_t>(parseStrictU64(sessionsArg, 1, 256));
        } catch (const std::exception &err) {
            std::fprintf(stderr,
                         "bench_serve_load: bad value for --sessions: "
                         "%s\n",
                         err.what());
            return kExitUsage;
        }
    }

    std::unique_ptr<PredictionServer> local;
    if (connectPath.empty()) {
        ServeLimits limits = PredictionServer::defaultLimits();
        limits.maxSessions = std::max(limits.maxSessions,
                                      std::max<size_t>(nsessions, 1));
        local = std::make_unique<PredictionServer>(limits,
                                                   ctx.args().jobs);
    }

    try {
        if (nsessions > 0) {
            return runLoad(ctx, *grid, nsessions, connectPath,
                           local.get(), sessionName);
        }
        Rpc rpc = local ? Rpc(*local) : Rpc(connectPath);
        return runParity(ctx, *grid, rpc, sessionName);
    } catch (const std::exception &err) {
        std::fprintf(stderr, "bench_serve_load: %s\n", err.what());
        return kExitFatal;
    }
}
