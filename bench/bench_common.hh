/**
 * @file
 * Shared scaffolding for the per-table / per-figure reproduction
 * binaries. Each binary regenerates one table or figure of the paper's
 * evaluation section: it runs the relevant predictor configurations
 * over the synthetic SPECINT95 suite and prints the same rows/series
 * the paper reports, plus the shape expectations to check against.
 */

#ifndef EV8_BENCH_BENCH_COMMON_HH
#define EV8_BENCH_BENCH_COMMON_HH

#include <functional>
#include <string>
#include <vector>

#include "predictors/predictor.hh"
#include "sim/simulator.hh"
#include "sim/suite_runner.hh"

namespace ev8
{

/** One experiment row: a labelled predictor configuration. */
struct ExperimentRow
{
    std::string label;
    PredictorFactory factory;
    SimConfig config;
};

/** Prints the standard experiment banner (id, title, scale, caveat). */
void printBanner(const std::string &experiment_id,
                 const std::string &title);

/**
 * Runs every row over the suite and prints the paper-style table:
 * one line per configuration, one column per benchmark (misp/KI),
 * plus the arithmetic mean and the configuration's storage budget.
 * Returns the per-row results for further processing.
 */
std::vector<std::vector<BenchResult>> runAndPrint(
    SuiteRunner &runner, const std::vector<ExperimentRow> &rows);

/** Prints a per-benchmark bar chart of one result row. */
void printBars(const std::string &title,
               const std::vector<BenchResult> &results);

/** Prints the bullet list of shapes the paper's figure exhibits. */
void printShapeNotes(const std::vector<std::string> &notes);

} // namespace ev8

#endif // EV8_BENCH_BENCH_COMMON_HH
