/**
 * @file
 * Shared scaffolding for the per-table / per-figure reproduction
 * binaries. Each binary regenerates one table or figure of the paper's
 * evaluation section: it runs the relevant predictor configurations
 * over the synthetic SPECINT95 suite and prints the same rows/series
 * the paper reports, plus the shape expectations to check against.
 *
 * Every binary speaks the same command line (parseBenchArgs):
 *
 *     --json=<path>    machine-readable artifact (schema ev8-bench-v1)
 *     --csv=<path>     result rows as CSV
 *     --events=<path>  sampled misprediction JSONL
 *     --sample=<N>     event sampling period (default 64)
 *     --branches=<N>   per-benchmark branch budget (sets
 *                      EV8_BRANCHES_PER_BENCH for the process)
 *     --jobs=<N>       simulation worker threads (default EV8_JOBS or
 *                      hardware concurrency; artifacts are
 *                      byte-identical for any N)
 *     --no-timing      skip the lookup/update/history ScopedTimer split
 *     --trace-out=<f>  Chrome trace_event timeline of the run
 *                      (Perfetto / chrome://tracing loadable)
 *     --progress       live cells-done/ETA line on stderr
 *     --quiet          suppress the human-readable tables/banner
 *     --help           usage
 *
 * --trace-out and --progress output is timing-dependent and excluded
 * from the byte-identity guarantees; the CI invocation for long grids
 * is "--progress --quiet" plus the artifact flags.
 *
 * BenchContext bundles the parsed arguments with the metric registry,
 * the event sink, the export document and the (parallel) suite runner,
 * so a bench main() is:
 *
 *     BenchContext ctx(argc, argv, "Fig. 5", "...");
 *     SuiteRunner &runner = ctx.runner();
 *     ...
 *     runAndPrint(ctx, runner, rows);
 *     return ctx.finish();
 */

#ifndef EV8_BENCH_BENCH_COMMON_HH
#define EV8_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/event_trace.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "predictors/predictor.hh"
#include "sim/simulator.hh"
#include "sim/suite_runner.hh"

namespace ev8
{

/**
 * Unified bench exit codes. Fatal diagnostics go to stderr prefixed
 * with the program name; a partial run still writes its artifacts (with
 * a "failures" section) before exiting kExitPartial.
 */
constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;   //!< bad command line or env knob
constexpr int kExitPartial = 3; //!< completed, but some cells failed
constexpr int kExitFatal = 4;   //!< unrecoverable harness error (I/O)

/** One experiment row: a labelled predictor configuration. */
struct ExperimentRow
{
    std::string label;
    PredictorFactory factory;
    SimConfig config;
};

/** The unified bench command line, parsed. */
struct BenchArgs
{
    std::string jsonPath;     //!< --json=<path>, empty = no artifact
    std::string csvPath;      //!< --csv=<path>, empty = no artifact
    std::string eventsPath;   //!< --events=<path>, empty = no trace
    uint64_t sampleEvery = 64; //!< --sample=<N>
    unsigned jobs = 0;         //!< --jobs=<N>, 0 = engine default
    bool timing = true;        //!< cleared by --no-timing
    std::string traceOutPath;  //!< --trace-out=<path>, empty = no trace
    bool progress = false;     //!< --progress
    bool quiet = false;        //!< --quiet

    /** Any machine-readable output requested? */
    bool
    wantsArtifacts() const
    {
        return !jsonPath.empty() || !csvPath.empty()
            || !eventsPath.empty();
    }
};

/**
 * Parses the unified bench options. --help prints usage and exits 0;
 * an unrecognized or malformed option prints usage and exits 2.
 * --branches=<N> is applied immediately by setting the
 * EV8_BRANCHES_PER_BENCH environment variable.
 */
BenchArgs parseBenchArgs(int argc, char **argv);

/**
 * A binary-specific option hook: called with each argv entry before the
 * shared options are tried; return true to consume it. Lets the serve
 * binaries add --socket/--grid/--sessions while keeping the uniform
 * --json/--csv/--trace-out/--progress surface.
 */
using BenchOptionHandler = std::function<bool(const char *arg)>;

/**
 * parseBenchArgs with a binary-specific option hook. @p extra_usage
 * (may be null) is printed after the shared usage text on --help.
 */
BenchArgs parseBenchArgs(int argc, char **argv,
                         const BenchOptionHandler &extra,
                         const char *extra_usage);

/**
 * Did this process's bench arguments include --quiet? Gates every
 * human-readable stdout block (banner, tables, bar charts, shape
 * notes) so "--quiet --progress + artifact flags" is a clean CI
 * invocation. Artifacts and diagnostics are unaffected.
 */
bool benchQuiet();

/**
 * Everything one bench binary shares across its experiment: the parsed
 * arguments, the metric registry, the (optional) misprediction event
 * sink, and the export document that finish() writes out.
 */
class BenchContext
{
  public:
    /** Parses argv (may exit, see parseBenchArgs), prints the banner. */
    BenchContext(int argc, char **argv, std::string experiment_id,
                 std::string title);

    /** Same, with a binary-specific option hook (serve binaries). */
    BenchContext(int argc, char **argv, std::string experiment_id,
                 std::string title, const BenchOptionHandler &extra,
                 const char *extra_usage);

    const BenchArgs &args() const { return args_; }
    MetricRegistry &metrics() { return registry_; }

    /**
     * The shared suite runner, honouring --branches and --jobs.
     * Created on first use (after argument parsing), one per binary:
     * its trace cache and thread pool span every experiment row.
     */
    SuiteRunner &runner();

    /** Returns @p config with the observability hooks attached. */
    SimConfig instrument(SimConfig config);

    /** Records one export row with explicit column names. */
    void recordRow(const std::string &label, uint64_t storage_bits,
                   std::vector<std::string> columns,
                   std::vector<double> values);

    /** Convenience: per-benchmark misp/KI columns plus "amean". */
    void recordResults(const std::string &label, uint64_t storage_bits,
                       const std::vector<BenchResult> &results);

    /** Folds one run's timing split into the exported totals. */
    void noteTiming(const SimTiming &timing);

    /**
     * Registers a cell failure received from outside the context's own
     * runner (a served session's wire failure record): exported in the
     * artifacts' "failures" section and reflected in the exit code,
     * exactly like a local CellFailure.
     */
    void recordFailure(BenchFailureExport failure);

    /**
     * The --events sampling sink (null without --events). Served mode
     * replays wire-delivered misprediction events through it so the
     * JSONL stream matches a batch run byte for byte.
     */
    MispredictSink *eventSink() { return events.get(); }

    /**
     * Writes the requested --json/--csv artifacts and closes the event
     * stream, then reports the run's fate as main()'s exit code:
     * kExitOk on a clean run, kExitPartial when any grid cell
     * exhausted its retries (the failures ride along in the artifacts
     * and as "cell_failure" JSONL records in the event stream), and
     * kExitFatal when an artifact could not be written.
     */
    int finish();

  private:
    /** Fills the artifact's telemetry block at finish() time. */
    TelemetryExport buildTelemetry() const;

    std::string prog_; //!< program name, prefixes fatal diagnostics
    BenchArgs args_;
    BenchExport data_;
    MetricRegistry registry_;
    std::unique_ptr<std::ofstream> eventsOut;
    std::unique_ptr<EventTraceSink> events;
    std::unique_ptr<SuiteRunner> runner_;
    uint64_t startNs_ = 0; //!< harness start, span-tracer clock
};

/** Prints the standard experiment banner (id, title, scale, caveat). */
void printBanner(const std::string &experiment_id,
                 const std::string &title);

/**
 * Runs every row over the suite and prints the paper-style table:
 * one line per configuration, one column per benchmark (misp/KI),
 * plus the arithmetic mean and the configuration's storage budget.
 * Each row's SimConfig is instrumented through @p ctx and its results
 * recorded for export. Cells that failed permanently print as "!!"
 * (and export as null); the mean skips them. Returns the per-row
 * results.
 */
std::vector<std::vector<BenchResult>> runAndPrint(
    BenchContext &ctx, SuiteRunner &runner,
    const std::vector<ExperimentRow> &rows);

/** Prints a per-benchmark bar chart of one result row. */
void printBars(const std::string &title,
               const std::vector<BenchResult> &results);

/** Prints the bullet list of shapes the paper's figure exhibits. */
void printShapeNotes(const std::vector<std::string> &notes);

} // namespace ev8

#endif // EV8_BENCH_BENCH_COMMON_HH
