#include "bench_common.hh"

#include <cstdio>

#include "common/table.hh"
#include "workloads/suite.hh"

namespace ev8
{

void
printBanner(const std::string &experiment_id, const std::string &title)
{
    std::printf("=====================================================\n");
    std::printf("%s -- %s\n", experiment_id.c_str(), title.c_str());
    std::printf("Seznec, Felix, Krishnan, Sazeides: \"Design Tradeoffs "
                "for the Alpha EV8 Conditional Branch Predictor\", "
                "ISCA 2002\n");
    std::printf("Workload: synthetic SPECINT95-like suite, %llu base "
                "conditional branches per benchmark\n",
                static_cast<unsigned long long>(branchesPerBenchmark()));
    std::printf("(set EV8_BRANCHES_PER_BENCH to rescale; absolute misp/KI "
                "shifts with scale, orderings hold)\n");
    std::printf("=====================================================\n\n");
}

std::vector<std::vector<BenchResult>>
runAndPrint(SuiteRunner &runner, const std::vector<ExperimentRow> &rows)
{
    TextTable table;
    std::vector<std::string> header{"configuration"};
    for (size_t i = 0; i < runner.size(); ++i)
        header.push_back(runner.name(i));
    header.push_back("amean");
    header.push_back("storage");
    table.header(std::move(header));

    std::vector<std::vector<BenchResult>> all;
    for (const auto &row : rows) {
        std::fprintf(stderr, "  running %s ...\n", row.label.c_str());
        auto results = runner.run(row.factory, row.config);
        std::vector<std::string> cells{row.label};
        for (const auto &r : results)
            cells.push_back(fmt(r.sim.stats.mispKI(), 2));
        cells.push_back(fmt(SuiteRunner::averageMispKI(results), 3));
        cells.push_back(formatKbits(row.factory()->storageBits()));
        table.row(std::move(cells));
        all.push_back(std::move(results));
    }

    std::printf("misp/KI (mispredictions per 1000 instructions), lower "
                "is better:\n\n%s\n", table.render().c_str());
    return all;
}

void
printBars(const std::string &title, const std::vector<BenchResult> &results)
{
    std::vector<std::string> labels;
    std::vector<double> values;
    for (const auto &r : results) {
        labels.push_back(r.bench);
        values.push_back(r.sim.stats.mispKI());
    }
    std::printf("%s\n", renderBarChart(title, labels, values).c_str());
}

void
printShapeNotes(const std::vector<std::string> &notes)
{
    std::printf("Shape checks against the paper:\n");
    for (const auto &note : notes)
        std::printf("  * %s\n", note.c_str());
    std::printf("\n");
}

} // namespace ev8
