#include "bench_common.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "common/env.hh"
#include "common/simd.hh"
#include "common/table.hh"
#include "obs/json.hh"
#include "obs/progress.hh"
#include "obs/trace_span.hh"
#include "obs/trace_writer.hh"
#include "sim/experiment.hh"
#include "workloads/suite.hh"

namespace ev8
{

namespace
{

/** Set once by parseBenchArgs (--quiet); read via benchQuiet(). */
bool g_benchQuiet = false;

void
printUsage(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "Reproduces one table/figure of the EV8 branch predictor paper\n"
        "over the synthetic SPECINT95 suite.\n"
        "\n"
        "options:\n"
        "  --json=<path>    write the ev8-bench-v1 JSON artifact\n"
        "                   (results + metric registry + timing)\n"
        "  --csv=<path>     write the result rows as CSV\n"
        "  --events=<path>  write sampled misprediction events (JSONL)\n"
        "  --sample=<N>     event sampling period, every Nth\n"
        "                   misprediction (default 64)\n"
        "  --branches=<N>   per-benchmark dynamic conditional-branch\n"
        "                   budget (same as EV8_BRANCHES_PER_BENCH)\n"
        "  --sample-mode=<m> off (default) or phase: stratified\n"
        "                   phase-aware sampling over the pre-decoded\n"
        "                   streams (same as EV8_SAMPLE_MODE)\n"
        "  --sample-budget=<N> measured-branch budget for sampled mode,\n"
        "                   scaled per benchmark like --branches (same\n"
        "                   as EV8_SAMPLE_BUDGET; required with\n"
        "                   --sample-mode=phase)\n"
        "  --jobs=<N>       simulation worker threads, 1..4096 (default:\n"
        "                   EV8_JOBS or hardware concurrency; results and\n"
        "                   artifacts are byte-identical for any N)\n"
        "  --no-timing      skip the lookup/update/history timing split\n"
        "  --trace-out=<f>  write a Chrome trace_event timeline of the\n"
        "                   run (load in Perfetto / chrome://tracing;\n"
        "                   timing-dependent, excluded from byte-\n"
        "                   identity guarantees)\n"
        "  --progress       live progress line on stderr (cells done,\n"
        "                   failed/retried, ETA, per-worker cell)\n"
        "  --quiet          suppress the human-readable tables; combine\n"
        "                   with --progress and the artifact flags for\n"
        "                   CI runs\n"
        "  --help           this message\n"
        "\n"
        "Set EV8_TRACE_CACHE_DIR to persist generated traces between\n"
        "runs (versioned binary cache, safe across profile edits).\n"
        "Set EV8_CHECKPOINT_DIR to journal completed grid cells so an\n"
        "interrupted run resumes instead of restarting (resumed\n"
        "artifacts are byte-identical to uninterrupted ones).\n"
        "EV8_RETRY_MAX / EV8_RETRY_BASE_MS tune per-cell retries;\n"
        "EV8_FAULT_SPEC injects deterministic faults (testing).\n"
        "Sampled mode is tuned by EV8_SAMPLE_WINDOW / EV8_SAMPLE_WARMUP /\n"
        "EV8_SAMPLE_SEED / EV8_SAMPLE_MAX_PHASES (strictly parsed; the\n"
        "artifact gains a \"sampling\" block with per-cell 95%% CIs).\n"
        "\n"
        "exit codes:\n"
        "  0  success\n"
        "  2  bad command line or environment knob\n"
        "  3  partial results: some grid cells failed after retries\n"
        "     (artifacts carry a \"failures\" section)\n"
        "  4  fatal error (artifact or event stream I/O)\n",
        prog);
}

/** Returns the value of "--opt=value" when @p arg matches, else null. */
const char *
optValue(const char *arg, const char *opt)
{
    const size_t len = std::strlen(opt);
    if (std::strncmp(arg, opt, len) == 0 && arg[len] == '=')
        return arg + len + 1;
    return nullptr;
}

uint64_t
parseCount(const char *text, const char *opt, const char *prog)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "%s: bad value for %s: '%s'\n\n", prog, opt,
                     text);
        printUsage(prog);
        std::exit(2);
    }
    return v;
}

} // namespace

BenchArgs
parseBenchArgs(int argc, char **argv)
{
    return parseBenchArgs(argc, argv, nullptr, nullptr);
}

BenchArgs
parseBenchArgs(int argc, char **argv, const BenchOptionHandler &extra,
               const char *extra_usage)
{
    const char *prog = argc > 0 ? argv[0] : "bench";
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0
            || std::strcmp(arg, "-h") == 0) {
            printUsage(prog);
            if (extra_usage)
                std::fputs(extra_usage, stdout);
            std::exit(0);
        } else if (extra && extra(arg)) {
            // consumed by the binary's own option handler
        } else if (const char *v = optValue(arg, "--json")) {
            args.jsonPath = v;
        } else if (const char *v = optValue(arg, "--csv")) {
            args.csvPath = v;
        } else if (const char *v = optValue(arg, "--events")) {
            args.eventsPath = v;
        } else if (const char *v = optValue(arg, "--sample")) {
            args.sampleEvery = parseCount(v, "--sample", prog);
            if (args.sampleEvery == 0)
                args.sampleEvery = 1;
        } else if (const char *v = optValue(arg, "--branches")) {
            const uint64_t n = parseCount(v, "--branches", prog);
            setenv("EV8_BRANCHES_PER_BENCH",
                   std::to_string(n).c_str(), /*overwrite=*/1);
        } else if (const char *v = optValue(arg, "--sample-mode")) {
            // Validated (strictly) by sampleSpecFromEnv() when the
            // runner is created, like every EV8_SAMPLE_* knob.
            setenv("EV8_SAMPLE_MODE", v, /*overwrite=*/1);
        } else if (const char *v = optValue(arg, "--sample-budget")) {
            const uint64_t n = parseCount(v, "--sample-budget", prog);
            setenv("EV8_SAMPLE_BUDGET",
                   std::to_string(n).c_str(), /*overwrite=*/1);
        } else if (const char *v = optValue(arg, "--jobs")) {
            // Strict shared parser: "0", "-1", "4x" and friends are
            // hard errors, not a silent fallback to the default width.
            try {
                args.jobs = ExperimentEngine::parseJobs(v);
            } catch (const std::invalid_argument &err) {
                std::fprintf(stderr, "%s: bad value for --jobs: %s\n\n",
                             prog, err.what());
                printUsage(prog);
                std::exit(2);
            }
        } else if (std::strcmp(arg, "--no-timing") == 0) {
            args.timing = false;
        } else if (const char *v = optValue(arg, "--trace-out")) {
            args.traceOutPath = v;
        } else if (std::strcmp(arg, "--progress") == 0) {
            args.progress = true;
        } else if (std::strcmp(arg, "--quiet") == 0) {
            args.quiet = true;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n\n", prog,
                         arg);
            printUsage(prog);
            std::exit(2);
        }
    }
    g_benchQuiet = args.quiet;
    return args;
}

bool
benchQuiet()
{
    return g_benchQuiet;
}

BenchContext::BenchContext(int argc, char **argv,
                           std::string experiment_id, std::string title)
    : BenchContext(argc, argv, std::move(experiment_id),
                   std::move(title), nullptr, nullptr)
{
}

BenchContext::BenchContext(int argc, char **argv,
                           std::string experiment_id, std::string title,
                           const BenchOptionHandler &extra,
                           const char *extra_usage)
    : prog_(argc > 0 ? argv[0] : "bench"),
      args_(parseBenchArgs(argc, argv, extra, extra_usage))
{
    data_.experimentId = std::move(experiment_id);
    data_.title = std::move(title);
    data_.branchesPerBenchmark = branchesPerBenchmark();
    for (const Benchmark &b : specint95Suite())
        data_.benchmarks.push_back(b.profile.name);

    // Observability switches come first so every later phase (trace
    // generation included) lands on the timeline / progress line.
    SpanTracer::global().setThreadName("main");
    startNs_ = SpanTracer::global().nowNs();
    if (!args_.traceOutPath.empty())
        SpanTracer::global().enable();
    if (args_.progress)
        ProgressMeter::global().enable();

    if (!args_.eventsPath.empty()) {
        eventsOut = std::make_unique<std::ofstream>(args_.eventsPath);
        if (!*eventsOut) {
            std::fprintf(stderr, "%s: cannot open %s for writing\n",
                         prog_.c_str(), args_.eventsPath.c_str());
            std::exit(kExitFatal);
        }
        events = std::make_unique<EventTraceSink>(*eventsOut,
                                                  args_.sampleEvery);
    }

    printBanner(data_.experimentId, data_.title);
}

SuiteRunner &
BenchContext::runner()
{
    if (!runner_) {
        runner_ = std::make_unique<SuiteRunner>(branchesPerBenchmark(),
                                                args_.jobs);
        // Strictly parsed (exit 2 on a bad knob) exactly once per
        // binary, whether the mode came from the command line or the
        // environment. Active sampling also stamps the artifact's
        // "sampling" block header.
        const SampleSpec spec = sampleSpecFromEnv();
        if (spec.active) {
            runner_->setSampleSpec(spec);
            data_.sampling.active = true;
            data_.sampling.mode = "phase";
            data_.sampling.budget = spec.budget;
            data_.sampling.windowBranches = spec.windowBranches;
            data_.sampling.warmupBranches = spec.warmupBranches;
            data_.sampling.seed = spec.seed;
            data_.sampling.maxPhases = spec.maxPhases;
        }
    }
    return *runner_;
}

SimConfig
BenchContext::instrument(SimConfig config)
{
    config.metrics = &registry_;
    config.events = events.get();
    config.profileTiming = args_.timing && args_.wantsArtifacts();
    return config;
}

void
BenchContext::recordRow(const std::string &label, uint64_t storage_bits,
                        std::vector<std::string> columns,
                        std::vector<double> values)
{
    BenchRowExport row;
    row.label = label;
    row.storageBits = storage_bits;
    row.columns = std::move(columns);
    row.values = std::move(values);
    data_.rows.push_back(std::move(row));
}

void
BenchContext::recordResults(const std::string &label,
                            uint64_t storage_bits,
                            const std::vector<BenchResult> &results)
{
    std::vector<std::string> columns;
    std::vector<double> values;
    for (const auto &r : results) {
        columns.push_back(r.bench);
        // A failed cell exports as null (NaN) rather than a bogus 0.
        values.push_back(r.failed
                             ? std::numeric_limits<double>::quiet_NaN()
                             : r.sim.stats.mispKI());
        if (!r.failed)
            noteTiming(r.sim.timing);
    }
    columns.push_back("amean");
    values.push_back(SuiteRunner::averageMispKI(results));
    recordRow(label, storage_bits, std::move(columns), std::move(values));
}

void
BenchContext::noteTiming(const SimTiming &timing)
{
    data_.timing.merge(timing);
}

void
BenchContext::recordFailure(BenchFailureExport failure)
{
    data_.failures.push_back(std::move(failure));
}

TelemetryExport
BenchContext::buildTelemetry() const
{
    TelemetryExport tel;
    SpanTracer &tracer = SpanTracer::global();
    tel.wallNs = tracer.nowNs() - startNs_;

    const ResourceSample res = sampleResourceUsage();
    tel.cpuUserNs = res.cpuUserNs;
    tel.cpuSysNs = res.cpuSysNs;
    tel.peakRssBytes = res.peakRssBytes;

    const auto totals = tracer.phaseTotals();
    for (size_t i = 0; i < kSpanPhaseCount; ++i) {
        tel.phases.push_back(
            TelemetryPhase{spanPhaseName(static_cast<SpanPhase>(i)),
                           totals[i].count, totals[i].wallNs});
    }

    if (runner_) {
        TraceCache &cache = runner_->traceCache();
        tel.traceRequests = cache.traceRequestCount();
        tel.traceDiskHits = cache.diskHitCount();
        tel.tracesGenerated = cache.generatedCount();
        tel.streamRequests = cache.streamRequestCount();
        tel.streamDiskHits = cache.streamDiskHitCount();
        tel.streamsDecoded = cache.decodedCount();
        if (tel.streamRequests > 0) {
            tel.streamHitRatio =
                static_cast<double>(tel.streamDiskHits)
                / static_cast<double>(tel.streamRequests);
        }
    }

    if (ExperimentEngine *engine =
            runner_ ? runner_->engineIfCreated() : nullptr) {
        const Histogram &cells = engine->cellDurations();
        tel.cellBoundsMs = cells.bounds();
        tel.cellBucketCounts = cells.bucketCounts();
        tel.cellCount = cells.count();
        tel.cellSumMs = cells.sum();

        tel.poolWorkers = engine->jobs();
        tel.poolGridCells = engine->gridCellCount();
        tel.poolBusyNs = engine->poolBusyNs();
        tel.poolWallNs = engine->gridWallNs();
        if (tel.poolWorkers > 0 && tel.poolWallNs > 0) {
            tel.poolUtilization = static_cast<double>(tel.poolBusyNs)
                / (static_cast<double>(tel.poolWorkers)
                   * static_cast<double>(tel.poolWallNs));
        }
    }

    const simd::Backend backend = simd::activeBackend();
    tel.simdBackend = simd::backendName(backend);
    tel.simdLanes = simd::backendLanes(backend);
    return tel;
}

int
BenchContext::finish()
{
    // Cache/scheduling counters legitimately differ between cold and
    // warm cache runs and between EV8_FUSED modes, so exporting them
    // by default would break the byte-identity guarantees the test
    // suite and CI gates rely on. Opt in with EV8_CACHE_METRICS=1
    // (strictly parsed: anything else is a usage error, exit 2).
    if (runner_ && strictEnvBool("EV8_CACHE_METRICS", false)) {
        runner_->traceCache().publishMetrics(registry_, "trace_cache");
        if (ExperimentEngine *engine = runner_->engineIfCreated())
            engine->publishMetrics(registry_, "engine");
    }

    // The disk-degrade flag is exported unconditionally: it only ever
    // appears on already-degraded runs, so the byte-identity guarantee
    // for clean runs is untouched, and a partial artifact self-reports
    // why its trace cache was cold.
    if (runner_ && runner_->traceCache().diskDisabled())
        registry_.counter("trace_cache.disk_disabled").inc();

    // Terminate any live progress line before the "wrote ..." messages.
    ProgressMeter::global().finishLine();

    if (runner_) {
        for (const CellFailure &f : runner_->failures()) {
            BenchFailureExport e;
            e.rowLabel = f.rowLabel;
            e.bench = f.bench;
            e.attempts = f.attempts;
            e.error = f.error;
            e.attemptNs = f.attemptNs;
            data_.failures.push_back(std::move(e));
        }
        for (const SuiteRunner::SampledCell &c :
             runner_->sampledCells()) {
            SamplingCellExport cell;
            cell.rowLabel = c.rowLabel;
            cell.bench = c.bench;
            cell.phases = c.info.phases;
            cell.windowsTotal = c.info.windowsTotal;
            cell.windowsSimulated = c.info.windowsSimulated;
            cell.branchesSimulated = c.info.branchesSimulated;
            cell.ci95MispKI = c.info.ci95MispKI;
            data_.sampling.cells.push_back(std::move(cell));
        }
    }

    data_.metrics = &registry_;

    // Always attached: the telemetry block's *presence* in the JSON
    // artifact is deterministic even though its values are not (the
    // determinism gates mask it).
    const TelemetryExport telemetry = buildTelemetry();
    data_.telemetry = &telemetry;

    if (!args_.jsonPath.empty()) {
        std::ofstream out(args_.jsonPath);
        if (!out) {
            std::fprintf(stderr, "%s: cannot open %s for writing\n",
                         prog_.c_str(), args_.jsonPath.c_str());
            return kExitFatal;
        }
        writeBenchJson(out, data_);
        std::fprintf(stderr, "wrote %s\n", args_.jsonPath.c_str());
    }
    if (!args_.csvPath.empty()) {
        std::ofstream out(args_.csvPath);
        if (!out) {
            std::fprintf(stderr, "%s: cannot open %s for writing\n",
                         prog_.c_str(), args_.csvPath.c_str());
            return kExitFatal;
        }
        writeBenchCsv(out, data_);
        std::fprintf(stderr, "wrote %s\n", args_.csvPath.c_str());
    }
    if (events) {
        // Failures ride the event stream too, as typed JSONL records,
        // so stream consumers need not correlate with the JSON
        // artifact to learn the run was partial.
        for (const auto &f : data_.failures) {
            JsonWriter w(*eventsOut);
            w.beginObject();
            w.key("type");
            w.value("cell_failure");
            w.key("row_label");
            w.value(f.rowLabel);
            w.key("bench");
            w.value(f.bench);
            w.key("attempts");
            w.value(uint64_t{f.attempts});
            w.key("error");
            w.value(f.error);
            w.endObject();
            *eventsOut << '\n';
        }
        eventsOut->flush();
        std::fprintf(stderr,
                     "wrote %s (%llu of %llu mispredictions, 1-in-%llu "
                     "sampling)\n",
                     args_.eventsPath.c_str(),
                     static_cast<unsigned long long>(events->emitted()),
                     static_cast<unsigned long long>(events->seen()),
                     static_cast<unsigned long long>(
                         events->sampleEvery()));
    }

    if (!args_.traceOutPath.empty()) {
        if (!writeChromeTraceFile(args_.traceOutPath,
                                  SpanTracer::global(), prog_))
            return kExitFatal;
        std::fprintf(stderr, "wrote %s\n", args_.traceOutPath.c_str());
    }

    if (args_.timing && args_.wantsArtifacts() && !args_.quiet
        && data_.timing.lookup.calls > 0) {
        std::printf("timing: lookup %.1f ns/call, update %.1f ns/call, "
                    "history %.1f ns/block\n\n",
                    data_.timing.lookup.nsPerCall(),
                    data_.timing.update.nsPerCall(),
                    data_.timing.history.nsPerCall());
    }

    if (!data_.failures.empty()) {
        std::fprintf(stderr,
                     "%s: %zu grid cell(s) failed after retries; "
                     "results are PARTIAL\n",
                     prog_.c_str(), data_.failures.size());
        return kExitPartial;
    }
    return kExitOk;
}

void
printBanner(const std::string &experiment_id, const std::string &title)
{
    if (benchQuiet())
        return;
    std::printf("=====================================================\n");
    std::printf("%s -- %s\n", experiment_id.c_str(), title.c_str());
    std::printf("Seznec, Felix, Krishnan, Sazeides: \"Design Tradeoffs "
                "for the Alpha EV8 Conditional Branch Predictor\", "
                "ISCA 2002\n");
    std::printf("Workload: synthetic SPECINT95-like suite, %llu base "
                "conditional branches per benchmark\n",
                static_cast<unsigned long long>(branchesPerBenchmark()));
    std::printf("(set EV8_BRANCHES_PER_BENCH to rescale; absolute misp/KI "
                "shifts with scale, orderings hold)\n");
    std::printf("=====================================================\n\n");
}

std::vector<std::vector<BenchResult>>
runAndPrint(BenchContext &ctx, SuiteRunner &runner,
            const std::vector<ExperimentRow> &rows)
{
    TextTable table;
    std::vector<std::string> header{"configuration"};
    for (size_t i = 0; i < runner.size(); ++i)
        header.push_back(runner.name(i));
    header.push_back("amean");
    header.push_back("storage");
    table.header(std::move(header));

    // One grid batch for the whole table: rows submitted together let
    // the engine fuse compatible (benchmark, history) cells across
    // configurations into shared trace walks, instead of paying one
    // walk per row. Submission stays row-major, so the deterministic
    // merge order -- and hence every artifact byte -- matches the old
    // row-at-a-time loop.
    std::vector<GridRow> grid;
    grid.reserve(rows.size());
    for (const auto &row : rows) {
        if (!benchQuiet())
            std::fprintf(stderr, "  running %s ...\n",
                         row.label.c_str());
        grid.push_back({row.factory, ctx.instrument(row.config),
                        row.label});
    }
    std::vector<std::vector<BenchResult>> all =
        runner.runGrid(grid).results;

    for (size_t i = 0; i < rows.size(); ++i) {
        const auto &results = all[i];
        std::vector<std::string> cells{rows[i].label};
        for (const auto &r : results)
            cells.push_back(r.failed ? "!!"
                                     : fmt(r.sim.stats.mispKI(), 2));
        cells.push_back(fmt(SuiteRunner::averageMispKI(results), 3));
        const uint64_t storage_bits = rows[i].factory()->storageBits();
        cells.push_back(formatKbits(storage_bits));
        table.row(std::move(cells));
        ctx.recordResults(rows[i].label, storage_bits, results);
    }

    if (!benchQuiet()) {
        std::printf("misp/KI (mispredictions per 1000 instructions), "
                    "lower is better:\n\n%s\n",
                    table.render().c_str());
    }
    return all;
}

void
printBars(const std::string &title, const std::vector<BenchResult> &results)
{
    if (benchQuiet())
        return;
    std::vector<std::string> labels;
    std::vector<double> values;
    for (const auto &r : results) {
        labels.push_back(r.bench);
        values.push_back(r.failed
                             ? std::numeric_limits<double>::quiet_NaN()
                             : r.sim.stats.mispKI());
    }
    std::printf("%s\n", renderBarChart(title, labels, values).c_str());
}

void
printShapeNotes(const std::vector<std::string> &notes)
{
    if (benchQuiet())
        return;
    std::printf("Shape checks against the paper:\n");
    for (const auto &note : notes)
        std::printf("  * %s\n", note.c_str());
    std::printf("\n");
}

} // namespace ev8
