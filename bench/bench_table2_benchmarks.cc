/**
 * @file
 * Table 2 reproduction: benchmark characteristics of the synthetic
 * SPECINT95 suite -- dynamic and static conditional branch counts --
 * side by side with the paper's numbers for the real Atom traces.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "workloads/suite.hh"

using namespace ev8;

namespace
{

/** The paper's Table 2 (dynamic in thousands; static counts). */
struct PaperRow
{
    const char *name;
    unsigned dynamicK;
    unsigned staticCount;
};

constexpr PaperRow kPaper[] = {
    {"compress", 12044, 46},  {"gcc", 16035, 12086},
    {"go", 11285, 3710},      {"ijpeg", 8894, 904},
    {"li", 16254, 251},       {"m88ksim", 9706, 409},
    {"perl", 13263, 273},     {"vortex", 12757, 2239},
};

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, "Table 2", "Benchmark characteristics");

    SuiteRunner &runner = ctx.runner();
    TextTable table;
    table.header({"benchmark", "dyn. cond. (x1000)", "static cond.",
                  "paper dyn. (x1000)", "paper static", "taken rate",
                  "instr/branch"});

    for (size_t i = 0; i < runner.size(); ++i) {
        if (!benchQuiet())
            std::fprintf(stderr, "  generating %s ...\n",
                         runner.name(i).c_str());
        const TraceStats s = runner.trace(i).stats();
        table.row({runner.name(i),
                   fmt(double(s.dynamicCondBranches) / 1000.0, 0),
                   std::to_string(s.staticCondBranches),
                   std::to_string(kPaper[i].dynamicK),
                   std::to_string(kPaper[i].staticCount),
                   fmt(s.takenRate(), 3),
                   fmt(double(s.instructions)
                           / double(s.dynamicCondBranches),
                       1)});
        ctx.recordRow(runner.name(i), 0,
                      {"dynamic_cond", "static_cond", "paper_dynamic_k",
                       "paper_static", "taken_rate", "instr_per_branch"},
                      {double(s.dynamicCondBranches),
                       double(s.staticCondBranches),
                       double(kPaper[i].dynamicK),
                       double(kPaper[i].staticCount), s.takenRate(),
                       double(s.instructions)
                           / double(s.dynamicCondBranches)});
    }
    if (!benchQuiet())
        std::printf("%s\n", table.render().c_str());

    printShapeNotes({
        "relative dynamic volumes proportional to the paper's Table 2 "
        "(li largest, ijpeg smallest)",
        "static footprint ordering preserved: gcc >> go > vortex > "
        "ijpeg > m88ksim/perl/li >> compress",
        "executed static counts approach the paper's at the default "
        "scale; they grow with EV8_BRANCHES_PER_BENCH as coverage "
        "percolates",
        "not-taken skew of optimized Alpha code (Section 5.1)",
    });
    return ctx.finish();
}
