/**
 * @file
 * Fig. 5 reproduction: branch prediction accuracy of global-history
 * schemes at EV8-class memorization budgets, each at its best history
 * length (Section 8.2). Conventional (per-branch) global history.
 */

#include "bench_common.hh"
#include "predictors/factory.hh"

using namespace ev8;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv,
                     "Fig. 5", "Branch prediction accuracy for various "
                               "global history schemes");

    SuiteRunner &runner = ctx.runner();
    const SimConfig ghist = SimConfig::ghist();

    const std::vector<ExperimentRow> rows = {
        {"2Bc-gskew 4*32K (256Kb)", [] { return make2BcGskew256K(); },
         ghist},
        {"2Bc-gskew 4*64K (512Kb)", [] { return make2BcGskew512K(); },
         ghist},
        {"bi-mode 2x128K+16K (544Kb)", [] { return makeBimode544K(); },
         ghist},
        {"gshare 1M (2Mb)", [] { return makeGshare2M(); }, ghist},
        {"YAGS 288Kb", [] { return makeYags288K(); }, ghist},
        {"YAGS 576Kb", [] { return makeYags576K(); }, ghist},
    };

    const auto results = runAndPrint(ctx, runner, rows);
    printBars("2Bc-gskew 512Kb, misp/KI per benchmark:", results[1]);

    printShapeNotes({
        "2Bc-gskew outperforms the other schemes at equal budget, "
        "except YAGS (no clear winner between those two)",
        "the de-aliased schemes (2Bc-gskew, bi-mode, YAGS) beat the "
        "2 Mbit gshare despite a fraction of its storage",
        "go is the hardest benchmark for every scheme; "
        "m88ksim/perl/vortex the easiest",
        "doubling 2Bc-gskew from 256Kb to 512Kb helps most on the "
        "large-footprint benchmarks (gcc, go)",
    });
    return ctx.finish();
}
