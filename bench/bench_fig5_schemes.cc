/**
 * @file
 * Fig. 5 reproduction: branch prediction accuracy of global-history
 * schemes at EV8-class memorization budgets, each at its best history
 * length (Section 8.2). Conventional (per-branch) global history.
 *
 * The rows come from the shared "fig5" grid registry (serve/grids.hh),
 * the same table the serve protocol resolves session grids against --
 * so the batch artifact and a served client's artifact are built from
 * one definition of the labels, specs and base config.
 */

#include "bench_common.hh"
#include "predictors/factory.hh"
#include "serve/grids.hh"

using namespace ev8;

int
main(int argc, char **argv)
{
    const GridSpec *grid = findGrid("fig5");
    BenchContext ctx(argc, argv, grid->benchId, grid->title);

    SuiteRunner &runner = ctx.runner();
    const SimConfig base = baseConfig(*grid);

    std::vector<ExperimentRow> rows;
    rows.reserve(grid->rows.size());
    for (const GridRowSpec &row : grid->rows) {
        rows.push_back({row.label,
                        [spec = row.spec] { return makePredictor(spec); },
                        base});
    }

    const auto results = runAndPrint(ctx, runner, rows);
    printBars("2Bc-gskew 512Kb, misp/KI per benchmark:", results[1]);

    printShapeNotes({
        "2Bc-gskew outperforms the other schemes at equal budget, "
        "except YAGS (no clear winner between those two)",
        "the de-aliased schemes (2Bc-gskew, bi-mode, YAGS) beat the "
        "2 Mbit gshare despite a fraction of its storage",
        "go is the hardest benchmark for every scheme; "
        "m88ksim/perl/vortex the easiest",
        "doubling 2Bc-gskew from 256Kb to 512Kb helps most on the "
        "large-footprint benchmarks (gcc, go)",
    });
    return ctx.finish();
}
