/**
 * @file
 * Table 1 reproduction: the Alpha EV8 branch predictor configuration --
 * per-component prediction/hysteresis table sizes and history lengths,
 * with the storage accounting that reaches the 352 Kbit total.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "core/ev8_predictor.hh"
#include "predictors/twobcgskew.hh"

using namespace ev8;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv,
                     "Table 1", "Characteristics of the Alpha EV8 "
                                "branch predictor");

    const TwoBcGskewConfig cfg = TwoBcGskewConfig::ev8Size();
    const char *names[kNumTables] = {"BIM", "G0", "G1", "Meta"};

    TextTable table;
    table.header({"", "prediction table", "hysteresis table",
                  "history length"});
    // Paper order: BIM, G0, G1, Meta.
    for (TableId t : {BIM, G0, G1, META}) {
        const TableGeometry &geo = cfg.tables[t];
        table.row({names[t],
                   std::to_string((1u << geo.log2Pred) / 1024) + "K",
                   std::to_string((1u << geo.log2Hyst) / 1024) + "K",
                   std::to_string(geo.histLen)});
        ctx.recordRow(names[t], 0,
                      {"pred_entries", "hyst_entries", "history_length"},
                      {double(1u << geo.log2Pred),
                       double(1u << geo.log2Hyst),
                       double(geo.histLen)});
    }
    if (!benchQuiet())
        std::printf("%s\n", table.render().c_str());

    uint64_t pred_bits = 0, hyst_bits = 0;
    for (const auto &geo : cfg.tables) {
        pred_bits += uint64_t{1} << geo.log2Pred;
        hyst_bits += uint64_t{1} << geo.log2Hyst;
    }
    Ev8Predictor hardware;
    if (!benchQuiet()) {
        std::printf("prediction array: %s, hysteresis array: %s, "
                    "total: %s\n",
                    formatKbits(pred_bits).c_str(),
                    formatKbits(hyst_bits).c_str(),
                    formatKbits(pred_bits + hyst_bits).c_str());
        std::printf("physical banked model reports:   %s\n\n",
                    formatKbits(hardware.storageBits()).c_str());
    }
    ctx.recordRow("total", hardware.storageBits(),
                  {"pred_bits", "hyst_bits"},
                  {double(pred_bits), double(hyst_bits)});

    printShapeNotes({
        "208 Kbits prediction + 144 Kbits hysteresis = 352 Kbits "
        "(Section 4.7)",
        "BIM smaller than the other components (Section 4.6)",
        "half-size hysteresis on G0 and Meta (Section 4.4)",
        "history lengths 4 / 13 / 21 / 15 for BIM / G0 / G1 / Meta",
    });
    return ctx.finish();
}
