/**
 * @file
 * Design-choice ablation: the partial update policy of Section 4.2
 * versus total update, on both the hardware EV8 and the unconstrained
 * 2Bc-gskew, plus e-gskew for reference ([15] first reported the
 * effect).
 */

#include "bench_common.hh"
#include "serve/grids.hh"

using namespace ev8;

int
main(int argc, char **argv)
{
    // The rows come from the shared grid registry (serve/grids.hh) so
    // the batch artifact and a served "ablation-update-policy" client's
    // artifact are built from one definition of the labels, factories
    // and per-row presets -- CI's serve gate compares the two.
    const GridSpec *grid = findGrid("ablation-update-policy");
    BenchContext ctx(argc, argv, grid->benchId, grid->title);

    SuiteRunner &runner = ctx.runner();

    std::vector<ExperimentRow> rows;
    rows.reserve(grid->rows.size());
    for (const GridRowSpec &row : grid->rows) {
        rows.push_back({row.label,
                        [&row] { return makeRowPredictor(row); },
                        rowBaseConfig(*grid, row)});
    }

    runAndPrint(ctx, runner, rows);

    printShapeNotes({
        "partial update beats total update for 2Bc-gskew and e-gskew "
        "(better space utilization; Rationale 1 leaves agreeing "
        "counters soft so colliding branches can steal them)",
        "partial update also enables the split prediction/hysteresis "
        "arrays: a correct prediction writes only the hysteresis array "
        "(Section 4.3)",
    });
    return ctx.finish();
}
