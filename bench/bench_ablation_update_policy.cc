/**
 * @file
 * Design-choice ablation: the partial update policy of Section 4.2
 * versus total update, on both the hardware EV8 and the unconstrained
 * 2Bc-gskew, plus e-gskew for reference ([15] first reported the
 * effect).
 */

#include "bench_common.hh"
#include "core/ev8_predictor.hh"
#include "predictors/egskew.hh"
#include "predictors/twobcgskew.hh"

using namespace ev8;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv,
                     "Ablation (Section 4.2)", "Partial vs. total "
                                               "update policy");

    SuiteRunner &runner = ctx.runner();

    const std::vector<ExperimentRow> rows = {
        {"EV8, partial update",
         [] { return std::make_unique<Ev8Predictor>(); },
         SimConfig::ev8()},
        {"EV8, total update",
         [] {
             Ev8Config cfg;
             cfg.partialUpdate = false;
             cfg.label = "EV8-total";
             return std::make_unique<Ev8Predictor>(cfg);
         },
         SimConfig::ev8()},
        {"2Bc-gskew 512Kb, partial",
         [] {
             return std::make_unique<TwoBcGskewPredictor>(
                 TwoBcGskewConfig::symmetric(16, 0, 13, 15, 21,
                                             "gskew-partial"));
         },
         SimConfig::ghist()},
        {"2Bc-gskew 512Kb, total",
         [] {
             auto cfg = TwoBcGskewConfig::symmetric(16, 0, 13, 15, 21,
                                                    "gskew-total");
             cfg.partialUpdate = false;
             return std::make_unique<TwoBcGskewPredictor>(cfg);
         },
         SimConfig::ghist()},
        {"e-gskew 3*64K, partial",
         [] { return std::make_unique<EgskewPredictor>(16, 15, true); },
         SimConfig::ghist()},
        {"e-gskew 3*64K, total",
         [] { return std::make_unique<EgskewPredictor>(16, 15, false); },
         SimConfig::ghist()},
    };

    runAndPrint(ctx, runner, rows);

    printShapeNotes({
        "partial update beats total update for 2Bc-gskew and e-gskew "
        "(better space utilization; Rationale 1 leaves agreeing "
        "counters soft so colliding branches can steal them)",
        "partial update also enables the split prediction/hysteresis "
        "arrays: a correct prediction writes only the hysteresis array "
        "(Section 4.3)",
    });
    return ctx.finish();
}
