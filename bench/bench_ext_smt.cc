/**
 * @file
 * Section 3 extension: simultaneous multithreading and the branch
 * predictor. The paper argues (qualitatively -- its evaluation has no
 * SMT data) that a global-history scheme is the SMT-compatible choice:
 * per-thread history registers are cheap, the shared tables degrade
 * gracefully under competition, and parallel threads of one program
 * can even alias constructively. This bench measures those claims on
 * the shared EV8 predictor:
 *
 *   - single-thread baselines;
 *   - 2-thread and 4-thread mixes of *different* benchmarks sharing
 *     one predictor, with per-thread histories (the EV8 design);
 *   - the same mixes with one naively shared history register (the
 *     pollution straw man);
 *   - 2 parallel threads of the *same* program (constructive aliasing).
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "core/ev8_predictor.hh"
#include "sim/smt.hh"
#include "workloads/synthetic_program.hh"

using namespace ev8;

namespace
{

void
report(BenchContext &ctx, const char *label, const char *title,
       const std::vector<SmtThreadResult> &threads)
{
    if (!benchQuiet())
        std::printf("%s\n", title);
    double sum = 0;
    std::vector<std::string> columns;
    std::vector<double> values;
    for (const auto &t : threads) {
        if (!benchQuiet())
            std::printf(
                "    %-10s %8.3f misp/KI  (%llu branches)\n",
                t.name.c_str(), t.sim.stats.mispKI(),
                static_cast<unsigned long long>(t.sim.condBranches));
        sum += t.sim.stats.mispKI();
        columns.push_back(t.name);
        values.push_back(t.sim.stats.mispKI());
    }
    const double amean = sum / double(threads.size());
    if (!benchQuiet())
        std::printf("    %-10s %8.3f misp/KI\n\n", "amean", amean);
    columns.push_back("amean");
    values.push_back(amean);
    ctx.recordRow(label, 0, std::move(columns), std::move(values));
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv,
                     "Extension (Section 3)", "SMT: shared predictor "
                                              "tables, per-thread "
                                              "histories");

    const uint64_t branches = branchesPerBenchmark() / 2;
    if (!benchQuiet())
        std::fprintf(stderr, "  generating traces ...\n");
    const Trace gcc = generateTrace(findBenchmark("gcc").profile,
                                    branches);
    const Trace go = generateTrace(findBenchmark("go").profile, branches);
    const Trace perl = generateTrace(findBenchmark("perl").profile,
                                     branches);
    const Trace vortex = generateTrace(findBenchmark("vortex").profile,
                                       branches);

    // A second instance of gcc as a parallel thread of the same
    // program: identical static CFG, different dynamic input (run
    // seed), so the threads share static branches -- the constructive
    // aliasing case of [10].
    SyntheticProgram gcc_program(findBenchmark("gcc").profile);
    Trace gcc2 = gcc_program.run(branches, /*run_seed=*/1);
    gcc2.setName("gcc-t2");

    SmtConfig per_thread;
    per_thread.sim = SimConfig::ev8();
    per_thread.perThreadHistory = true;

    SmtConfig shared_hist = per_thread;
    shared_hist.perThreadHistory = false;

    {
        if (!benchQuiet())
            std::fprintf(stderr, "  single-thread baselines ...\n");
        Ev8Predictor p1;
        report(ctx, "1T gcc", "single thread, gcc:",
               simulateSmt({&gcc}, p1, per_thread));
        Ev8Predictor p2;
        report(ctx, "1T go", "single thread, go:",
               simulateSmt({&go}, p2, per_thread));
    }
    {
        if (!benchQuiet())
            std::fprintf(stderr, "  2 threads, per-thread history ...\n");
        Ev8Predictor p;
        report(ctx, "2T gcc+go per-thread hist",
               "2 independent threads (gcc+go), per-thread histories:",
               simulateSmt({&gcc, &go}, p, per_thread));
    }
    {
        if (!benchQuiet())
            std::fprintf(stderr, "  2 threads, shared history ...\n");
        Ev8Predictor p;
        report(ctx, "2T gcc+go shared hist",
               "2 independent threads (gcc+go), ONE shared history "
               "(straw man):",
               simulateSmt({&gcc, &go}, p, shared_hist));
    }
    {
        if (!benchQuiet())
            std::fprintf(stderr, "  4 threads ...\n");
        Ev8Predictor p;
        report(ctx, "4T per-thread hist",
               "4 independent threads, per-thread histories:",
               simulateSmt({&gcc, &go, &perl, &vortex}, p, per_thread));
    }
    {
        if (!benchQuiet())
            std::fprintf(stderr, "  parallel threads of one program ...\n");
        Ev8Predictor p;
        report(ctx, "2T gcc parallel",
               "2 parallel threads of gcc (same program), per-thread "
               "histories:",
               simulateSmt({&gcc, &gcc2}, p, per_thread));
    }

    printShapeNotes({
        "independent threads sharing the 352 Kbit tables lose only "
        "modest accuracy vs. running alone (graceful degradation)",
        "sharing one history register across threads is much worse: "
        "each thread's correlations are shredded by the other's "
        "outcomes -- hence one global history register per thread "
        "(Section 3)",
        "parallel threads of the same program interfere less than "
        "independent ones (constructive aliasing on shared branches "
        "[10])",
    });
    return ctx.finish();
}
