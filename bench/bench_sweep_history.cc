/**
 * @file
 * The Section 8 methodology artifact: the history-length sweep used to
 * find every scheme's "best history length". Prints the sweep curve for
 * a gshare and for the 2Bc-gskew G1 length, demonstrating that the
 * optimum sits beyond log2(table size) for large predictors as the
 * trace grows (Section 5.3).
 *
 * Lengths can be overridden: EV8_SWEEP_LENGTHS="4,8,12,16" (comma
 * separated).
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "bench_common.hh"
#include "common/table.hh"
#include "predictors/factory.hh"
#include "predictors/twobcgskew.hh"
#include "sim/sweep.hh"

using namespace ev8;

namespace
{

std::vector<unsigned>
sweepLengths()
{
    if (const char *env = std::getenv("EV8_SWEEP_LENGTHS")) {
        std::vector<unsigned> lengths;
        std::istringstream in(env);
        std::string tok;
        while (std::getline(in, tok, ','))
            lengths.push_back(unsigned(std::stoul(tok)));
        if (!lengths.empty())
            return lengths;
    }
    return {4, 8, 12, 16, 20, 24};
}

void
printCurve(BenchContext &ctx, const char *label, const char *title,
           const std::vector<SweepPoint> &points)
{
    std::vector<std::string> labels;
    std::vector<std::string> columns;
    std::vector<double> values;
    for (const auto &p : points) {
        labels.push_back("h=" + std::to_string(p.histLen));
        columns.push_back("h" + std::to_string(p.histLen));
        values.push_back(p.avgMispKI);
    }
    if (!benchQuiet()) {
        std::printf("%s\n",
                    renderBarChart(title, labels, values).c_str());
        std::printf("  best length: %u (%.3f misp/KI)\n\n",
                    bestPoint(points).histLen,
                    bestPoint(points).avgMispKI);
    }
    columns.push_back("best_len");
    values.push_back(bestPoint(points).histLen);
    ctx.recordRow(label, 0, std::move(columns), std::move(values));
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv,
                     "Methodology (Section 8)", "History-length sweeps");

    SuiteRunner &runner = ctx.runner();
    const auto lengths = sweepLengths();
    const SimConfig ghist = ctx.instrument(SimConfig::ghist());

    if (!benchQuiet())
        std::fprintf(stderr, "  sweeping gshare 64K ...\n");
    const auto gshare = sweepHistoryLengths(
        runner,
        [](unsigned len) {
            return makePredictor("gshare:16:" + std::to_string(len));
        },
        lengths, ghist);
    printCurve(ctx, "gshare-64K",
               "gshare 64K entries, suite-average misp/KI by history "
               "length:",
               gshare);

    if (!benchQuiet())
        std::fprintf(stderr, "  sweeping 2Bc-gskew G1 length ...\n");
    const auto g1 = sweepHistoryLengths(
        runner,
        [](unsigned len) {
            return std::make_unique<TwoBcGskewPredictor>(
                TwoBcGskewConfig::symmetric(
                    16, 0, 13, 15, len,
                    "2bcgskew-G1h" + std::to_string(len)));
        },
        lengths, ghist);
    printCurve(ctx, "2bcgskew-G1",
               "2Bc-gskew 4*64K, G1 history length sweep (G0=13, "
               "Meta=15):",
               g1);

    printShapeNotes({
        "the gshare curve is U-shaped: too little history misses "
        "correlations, too much dilutes training",
        "the 2Bc-gskew G1 optimum sits ABOVE log2(entries)=16 -- "
        "Section 5.3's \"very long history\" observation (the effect "
        "strengthens with longer traces)",
    });
    return ctx.finish();
}
