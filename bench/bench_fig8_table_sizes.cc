/**
 * @file
 * Fig. 8 reproduction: adjusting table sizes (Section 8.4). Base
 * configuration is the 4*64K-entry / 512 Kbit 2Bc-gskew under the EV8
 * information vector; "small BIM" shrinks the bimodal table to 16K
 * entries; "EV8 size" additionally halves the G0 and Meta hysteresis
 * tables, reaching the 352 Kbit hardware budget.
 */

#include "bench_common.hh"
#include "serve/grids.hh"

using namespace ev8;

int
main(int argc, char **argv)
{
    // The rows come from the shared "fig8" grid registry
    // (serve/grids.hh) so the batch artifact and a served client's are
    // built from one definition of the labels, factories and base
    // config -- CI's serve gate compares the two.
    const GridSpec *grid = findGrid("fig8");
    BenchContext ctx(argc, argv, grid->benchId, grid->title);

    SuiteRunner &runner = ctx.runner();

    std::vector<ExperimentRow> rows;
    rows.reserve(grid->rows.size());
    for (const GridRowSpec &row : grid->rows) {
        rows.push_back({row.label,
                        [&row] { return makeRowPredictor(row); },
                        rowBaseConfig(*grid, row)});
    }

    runAndPrint(ctx, runner, rows);

    printShapeNotes({
        "shrinking BIM from 64K to 16K entries has no impact: each "
        "static branch maps to one bimodal entry, so the big table was "
        "sparsely used (Section 4.6)",
        "half-size hysteresis on G0 and Meta is barely noticeable "
        "except on go, the benchmark with the largest footprint",
        "the full EV8-size predictor (352Kb) stays within a whisker of "
        "the 512Kb base",
    });
    return ctx.finish();
}
