/**
 * @file
 * Fig. 8 reproduction: adjusting table sizes (Section 8.4). Base
 * configuration is the 4*64K-entry / 512 Kbit 2Bc-gskew under the EV8
 * information vector; "small BIM" shrinks the bimodal table to 16K
 * entries; "EV8 size" additionally halves the G0 and Meta hysteresis
 * tables, reaching the 352 Kbit hardware budget.
 */

#include "bench_common.hh"
#include "predictors/twobcgskew.hh"

using namespace ev8;

namespace
{

PredictorFactory
configOf(unsigned log2_bim, bool half_hysteresis, const char *label)
{
    return [log2_bim, half_hysteresis, label] {
        TwoBcGskewConfig cfg =
            TwoBcGskewConfig::symmetric(16, 4, 13, 15, 21, label);
        cfg.usePathInfo = true; // the EV8 information vector
        cfg.tables[BIM].log2Pred = log2_bim;
        cfg.tables[BIM].log2Hyst = log2_bim;
        if (half_hysteresis) {
            cfg.tables[G0].log2Hyst = 15;
            cfg.tables[META].log2Hyst = 15;
        }
        return std::make_unique<TwoBcGskewPredictor>(cfg);
    };
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv,
                     "Fig. 8", "Adjusting table sizes in the predictor");

    SuiteRunner &runner = ctx.runner();
    const SimConfig ev8_vector = SimConfig::ev8();

    const std::vector<ExperimentRow> rows = {
        {"4*64K base (512Kb)", configOf(16, false, "base-512Kb"),
         ev8_vector},
        {"small BIM (16K)", configOf(14, false, "small-BIM"),
         ev8_vector},
        {"EV8 size (352Kb)", configOf(14, true, "EV8-size"),
         ev8_vector},
    };

    const auto results = runAndPrint(ctx, runner, rows);
    (void)results;

    printShapeNotes({
        "shrinking BIM from 64K to 16K entries has no impact: each "
        "static branch maps to one bimodal entry, so the big table was "
        "sparsely used (Section 4.6)",
        "half-size hysteresis on G0 and Meta is barely noticeable "
        "except on go, the benchmark with the largest footprint",
        "the full EV8-size predictor (352Kb) stays within a whisker of "
        "the 512Kb base",
    });
    return ctx.finish();
}
