/**
 * @file
 * google-benchmark microbenchmarks: raw simulation throughput
 * (predictions per second) of every major scheme, and the cost of the
 * EV8's physical banked model versus the logical one. These are
 * simulator-engineering numbers, not paper results; they bound how far
 * EV8_BRANCHES_PER_BENCH can be raised.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/simd.hh"
#include "core/ev8_predictor.hh"
#include "predictors/factory.hh"
#include "sim/block_stream.hh"
#include "sim/simulator.hh"
#include "sim/suite_runner.hh"
#include "workloads/suite.hh"

namespace ev8
{
namespace
{

/** One shared medium trace for all throughput runs. */
const Trace &
benchTrace()
{
    static const Trace trace = generateTrace(
        findBenchmark("gcc").profile, 200000);
    return trace;
}

/** The same trace pre-decoded, as the experiment engine consumes it. */
const BlockStream &
benchStream()
{
    static const BlockStream stream = decodeBlockStream(benchTrace());
    return stream;
}

/**
 * Shared registration defaults: millisecond units plus min/max
 * aggregates. With --repeat=<N> (default 3) every benchmark runs N
 * repetitions, and the _min aggregate is the number to trust on a
 * noisy machine -- the fastest repetition is the one with the least
 * interference.
 */
void
applyDefaults(benchmark::internal::Benchmark *b)
{
    b->Unit(benchmark::kMillisecond);
    b->ComputeStatistics("min", [](const std::vector<double> &v) {
        return *std::min_element(v.begin(), v.end());
    });
    b->ComputeStatistics("max", [](const std::vector<double> &v) {
        return *std::max_element(v.begin(), v.end());
    });
}

void
runSim(benchmark::State &state, const PredictorFactory &factory,
       const SimConfig &config)
{
    const BlockStream &stream = benchStream();
    uint64_t branches = 0;
    for (auto _ : state) {
        auto predictor = factory();
        const SimResult r = simulateStream(stream, *predictor, config);
        branches += r.condBranches;
        benchmark::DoNotOptimize(r.stats.mispredictions());
    }
    state.counters["branches/s"] = benchmark::Counter(
        static_cast<double>(branches), benchmark::Counter::kIsRate);
}

void
BM_Bimodal(benchmark::State &state)
{
    runSim(state, [] { return makePredictor("bimodal:14"); },
           SimConfig::ghist());
}
BENCHMARK(BM_Bimodal)->Apply(applyDefaults);

void
BM_Gshare2M(benchmark::State &state)
{
    runSim(state, [] { return makeGshare2M(); }, SimConfig::ghist());
}
BENCHMARK(BM_Gshare2M)->Apply(applyDefaults);

void
BM_Yags576K(benchmark::State &state)
{
    runSim(state, [] { return makeYags576K(); }, SimConfig::ghist());
}
BENCHMARK(BM_Yags576K)->Apply(applyDefaults);

void
BM_TwoBcGskew512K(benchmark::State &state)
{
    runSim(state, [] { return make2BcGskew512K(); }, SimConfig::ghist());
}
BENCHMARK(BM_TwoBcGskew512K)->Apply(applyDefaults);

void
BM_Ev8Constrained(benchmark::State &state)
{
    runSim(state, [] { return std::make_unique<Ev8Predictor>(); },
           SimConfig::ev8());
}
BENCHMARK(BM_Ev8Constrained)->Apply(applyDefaults);

void
BM_Perceptron(benchmark::State &state)
{
    runSim(state, [] { return makePredictor("perceptron:12:24"); },
           SimConfig::ghist());
}
BENCHMARK(BM_Perceptron)->Apply(applyDefaults);

/**
 * The virtual-fallback kernel on the same scheme as BM_TwoBcGskew512K:
 * the spread between the two is what devirtualization buys.
 */
void
BM_TwoBcGskew512KGenericKernel(benchmark::State &state)
{
    SimConfig config = SimConfig::ghist();
    config.forceGenericKernel = true;
    runSim(state, [] { return make2BcGskew512K(); }, config);
}
BENCHMARK(BM_TwoBcGskew512KGenericKernel)->Apply(applyDefaults);

/** The fig6-style lane set: one gshare per candidate history length. */
std::vector<PredictorPtr>
sweepLanePredictors()
{
    std::vector<PredictorPtr> preds;
    for (unsigned h : {8, 12, 16, 20, 24, 28})
        preds.push_back(makePredictor("gshare:18:" + std::to_string(h)));
    return preds;
}

/** Forces one fused-stepper SIMD backend for the benchmark's scope
 *  (activeBackend() is resolved per walk, so setenv is enough). */
class ScopedSimdBackend
{
  public:
    explicit ScopedSimdBackend(const char *value)
    {
        if (const char *old = std::getenv("EV8_SIMD"))
            saved_ = old;
        else
            hadValue_ = false;
        ::setenv("EV8_SIMD", value, /*overwrite=*/1);
    }

    ~ScopedSimdBackend()
    {
        if (hadValue_)
            ::setenv("EV8_SIMD", saved_.c_str(), 1);
        else
            ::unsetenv("EV8_SIMD");
    }

  private:
    std::string saved_;
    bool hadValue_ = true;
};

/** One fused walk over @p preds; returns total branches stepped. */
uint64_t
fusedWalk(std::vector<PredictorPtr> &preds, const SimConfig &config)
{
    const BlockStream &stream = benchStream();
    std::vector<FusedLane> lanes;
    lanes.reserve(preds.size());
    for (auto &p : preds)
        lanes.push_back({p.get(), nullptr, nullptr});
    uint64_t branches = 0;
    const auto results = simulateStreamFused(stream, lanes, config);
    for (const SimResult &r : results) {
        branches += r.condBranches;
        benchmark::DoNotOptimize(r.stats.mispredictions());
    }
    return branches;
}

/**
 * A six-length gshare history sweep as one fused walk: the shape of a
 * bench_sweep_history column after grid fusion. Contrast with
 * BM_PerCellSweepGshare below -- the spread is what lane fusion buys
 * (shared block decode, branch iteration and history update across all
 * six lanes).
 */
void
BM_FusedSweepGshare(benchmark::State &state)
{
    const SimConfig config = SimConfig::ghist();
    uint64_t branches = 0;
    for (auto _ : state) {
        auto preds = sweepLanePredictors();
        branches += fusedWalk(preds, config);
    }
    state.counters["branches/s"] = benchmark::Counter(
        static_cast<double>(branches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FusedSweepGshare)->Apply(applyDefaults);

/**
 * The same fused sweep with EV8_SIMD=0: the tuned scalar per-lane
 * steppers instead of the vector group stepper. The spread between
 * this and BM_FusedSweepGshare is the SIMD win on the gshare/bimodal
 * indexed path; read both as _min aggregates.
 */
void
BM_FusedSweepGshareScalarSteppers(benchmark::State &state)
{
    ScopedSimdBackend simd("0");
    const SimConfig config = SimConfig::ghist();
    uint64_t branches = 0;
    for (auto _ : state) {
        auto preds = sweepLanePredictors();
        branches += fusedWalk(preds, config);
    }
    state.counters["branches/s"] = benchmark::Counter(
        static_cast<double>(branches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FusedSweepGshareScalarSteppers)->Apply(applyDefaults);

/** A fig6-style 2Bc-gskew lane set: the masked-bitplane hot path. */
std::vector<PredictorPtr>
gskewSweepLanePredictors()
{
    std::vector<PredictorPtr> preds;
    for (unsigned len : {8, 12, 16, 20, 24, 28}) {
        const unsigned h1 = std::max(2u, len * 62 / 100);
        const unsigned h2 = std::max(2u, len * 74 / 100);
        preds.push_back(makePredictor(
            "2bcgskew:15:0:" + std::to_string(h1) + ":"
            + std::to_string(h2) + ":" + std::to_string(len)));
    }
    return preds;
}

/**
 * Six 2Bc-gskew lanes as one fused walk, vector group stepper (the
 * default backend): four tables' counter reads, the e-gskew vote and
 * the masked bitplane counter updates all run as 4-lane vector ops.
 */
void
BM_FusedSweep2BcGskew(benchmark::State &state)
{
    const SimConfig config = SimConfig::ghist();
    uint64_t branches = 0;
    for (auto _ : state) {
        auto preds = gskewSweepLanePredictors();
        branches += fusedWalk(preds, config);
    }
    state.counters["branches/s"] = benchmark::Counter(
        static_cast<double>(branches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FusedSweep2BcGskew)->Apply(applyDefaults);

/** The scalar-stepper side of the 2Bc-gskew A/B (EV8_SIMD=0). */
void
BM_FusedSweep2BcGskewScalarSteppers(benchmark::State &state)
{
    ScopedSimdBackend simd("0");
    const SimConfig config = SimConfig::ghist();
    uint64_t branches = 0;
    for (auto _ : state) {
        auto preds = gskewSweepLanePredictors();
        branches += fusedWalk(preds, config);
    }
    state.counters["branches/s"] = benchmark::Counter(
        static_cast<double>(branches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FusedSweep2BcGskewScalarSteppers)->Apply(applyDefaults);

/** The same six-lane sweep as six independent walks (EV8_FUSED=0). */
void
BM_PerCellSweepGshare(benchmark::State &state)
{
    const BlockStream &stream = benchStream();
    const SimConfig config = SimConfig::ghist();
    uint64_t branches = 0;
    for (auto _ : state) {
        auto preds = sweepLanePredictors();
        for (auto &p : preds) {
            const SimResult r = simulateStream(stream, *p, config);
            branches += r.condBranches;
            benchmark::DoNotOptimize(r.stats.mispredictions());
        }
    }
    state.counters["branches/s"] = benchmark::Counter(
        static_cast<double>(branches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PerCellSweepGshare)->Apply(applyDefaults);

/** Cost of decoding a trace into a BlockStream (paid once per cache
 *  key, then amortized across every grid row that replays it). */
void
BM_BlockStreamDecode(benchmark::State &state)
{
    const Trace &trace = benchTrace();
    uint64_t branches = 0;
    for (auto _ : state) {
        const BlockStream s = decodeBlockStream(trace);
        branches += s.branches();
        benchmark::DoNotOptimize(s.blocks());
    }
    state.counters["branches/s"] = benchmark::Counter(
        static_cast<double>(branches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BlockStreamDecode)->Apply(applyDefaults);

void
BM_TraceGeneration(benchmark::State &state)
{
    const Benchmark &bench = findBenchmark("gcc");
    uint64_t branches = 0;
    for (auto _ : state) {
        const Trace t = generateTrace(bench.profile, 100000);
        branches += t.stats().dynamicCondBranches;
        benchmark::DoNotOptimize(t.size());
    }
    state.counters["branches/s"] = benchmark::Counter(
        static_cast<double>(branches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceGeneration)->Apply(applyDefaults);

} // namespace
} // namespace ev8

/**
 * Custom main: accepts the harness-wide --json=<path> spelling and
 * translates it to google-benchmark's --benchmark_out pair, and
 * --repeat=<N> (default 3) to --benchmark_repetitions -- each
 * benchmark then reports mean/median/stddev plus the min/max
 * aggregates registered above; prefer _min when comparing runs.
 * Everything else passes through to the library (see --help).
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> translated;
    translated.reserve(static_cast<size_t>(argc) + 2);
    bool repetitions_set = false;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0) {
            translated.push_back("--benchmark_out="
                                 + arg.substr(std::strlen("--json=")));
            translated.push_back("--benchmark_out_format=json");
        } else if (arg.rfind("--repeat=", 0) == 0) {
            translated.push_back("--benchmark_repetitions="
                                 + arg.substr(std::strlen("--repeat=")));
            repetitions_set = true;
        } else {
            if (arg.rfind("--benchmark_repetitions", 0) == 0)
                repetitions_set = true;
            translated.push_back(arg);
        }
    }
    if (!repetitions_set)
        translated.push_back("--benchmark_repetitions=3");
    std::vector<char *> args;
    args.reserve(translated.size());
    for (auto &arg : translated)
        args.push_back(arg.data());

    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
