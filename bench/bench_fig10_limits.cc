/**
 * @file
 * Fig. 10 reproduction: limits of brute-force scaling for global
 * history prediction (Section 9). A 4*1M-entry (8 Mbit) 2Bc-gskew
 * against the EV8-class predictors: the return on 16x more storage is
 * small except for very-large-footprint workloads, motivating hybrid
 * backup predictors (perceptron, local) instead -- see
 * bench_ext_perceptron.
 */

#include "bench_common.hh"
#include "common/table.hh"
#include "core/ev8_predictor.hh"
#include "predictors/factory.hh"

using namespace ev8;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv,
                     "Fig. 10", "Limits of using global history");

    SuiteRunner &runner = ctx.runner();

    const std::vector<ExperimentRow> rows = {
        {"EV8 (352Kb, constrained)",
         [] { return std::make_unique<Ev8Predictor>(); },
         SimConfig::ev8()},
        {"2Bc-gskew 4*64K (512Kb)", [] { return make2BcGskew512K(); },
         SimConfig::ghist()},
        {"2Bc-gskew 4*1M (8Mb)", [] { return make2BcGskew4M(); },
         SimConfig::ghist()},
    };

    const auto results = runAndPrint(ctx, runner, rows);

    const double mid = SuiteRunner::averageMispKI(results[1]);
    const double big = SuiteRunner::averageMispKI(results[2]);
    const double gain = mid - big;
    printShapeNotes({
        "16x the storage changes the suite average by only "
            + fmt(gain, 3) + " misp/KI (" + fmt(mid, 3) + " -> "
            + fmt(big, 3) + "): brute force has run out of road",
        "at short trace scales the 8 Mbit predictor can even lose "
        "(cold-start dominates its huge tables); with longer traces "
        "(EV8_BRANCHES_PER_BENCH >= 4M) a small benefit appears, "
        "concentrated in the large-footprint benchmarks (gcc)",
        "hence the paper's conclusion: beyond EV8-class sizes, add "
        "back-up predictors with different information vectors rather "
        "than more of the same (Section 9)",
    });
    return ctx.finish();
}
