/**
 * @file
 * Design-choice ablation for Section 6: the conflict-free bank-number
 * computation. Measures, on the real fetch-block streams of the suite:
 *
 *  - how often a naive banking scheme (bank = block address bits
 *    (a6,a5)) would conflict between two dynamically successive fetch
 *    blocks (each conflict would stall one of the two blocks fetched
 *    per cycle on single-ported arrays);
 *  - that the EV8 computation produces zero conflicts, by construction;
 *  - the bank-usage balance of both schemes;
 *  - the line predictor's accuracy and the resulting front-end
 *    throughput estimate, for context (Section 2).
 */

#include <array>
#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "frontend/bank_scheduler.hh"
#include "frontend/fetch_block.hh"
#include "frontend/pipeline.hh"

using namespace ev8;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv,
                     "Ablation (Section 6)", "Conflict-free "
                                             "bank-interleaved predictor "
                                             "access");

    SuiteRunner &runner = ctx.runner();
    TextTable table;
    table.header({"benchmark", "blocks", "naive conflicts", "naive %",
                  "EV8 conflicts", "line accuracy", "fetch IPC"});

    for (size_t i = 0; i < runner.size(); ++i) {
        if (!benchQuiet())
            std::fprintf(stderr, "  running %s ...\n",
                         runner.name(i).c_str());
        const Trace &trace = runner.trace(i);

        uint64_t blocks = 0, naive_conflicts = 0, ev8_conflicts = 0;
        unsigned prev_naive = 99, prev_ev8 = 99;
        BankScheduler sched;
        FrontEndPipeline pipeline;
        std::array<uint64_t, 4> usage{};

        FetchBlockBuilder builder;
        builder.begin(trace.startPc());
        auto sink = [&](const FetchBlock &block) {
            ++blocks;
            const unsigned naive =
                static_cast<unsigned>((block.address >> 5) & 3);
            const unsigned ev8 = sched.assign(block.address);
            ++usage[ev8];
            if (prev_naive != 99 && naive == prev_naive)
                ++naive_conflicts;
            if (prev_ev8 != 99 && ev8 == prev_ev8)
                ++ev8_conflicts;
            prev_naive = naive;
            prev_ev8 = ev8;
            pipeline.onBlock(block, false);
        };
        for (const auto &rec : trace.records())
            builder.feed(rec, sink);
        builder.flush(sink);

        sched.publishMetrics(ctx.metrics(), "frontend.banks");
        table.row({runner.name(i), std::to_string(blocks),
                   std::to_string(naive_conflicts),
                   fmt(100.0 * double(naive_conflicts) / double(blocks),
                       1),
                   std::to_string(ev8_conflicts),
                   fmt(pipeline.stats().lineAccuracy(), 3),
                   fmt(pipeline.stats().fetchIpc(), 2)});
        ctx.recordRow(runner.name(i), 0,
                      {"blocks", "naive_conflicts", "naive_pct",
                       "ev8_conflicts", "line_accuracy", "fetch_ipc"},
                      {double(blocks), double(naive_conflicts),
                       100.0 * double(naive_conflicts) / double(blocks),
                       double(ev8_conflicts),
                       pipeline.stats().lineAccuracy(),
                       pipeline.stats().fetchIpc()});
        if (!benchQuiet())
            std::printf(
                "    %s bank usage: %.1f%% %.1f%% %.1f%% %.1f%%\n",
                runner.name(i).c_str(),
                100.0 * double(usage[0]) / double(blocks),
                100.0 * double(usage[1]) / double(blocks),
                100.0 * double(usage[2]) / double(blocks),
                100.0 * double(usage[3]) / double(blocks));
    }
    if (!benchQuiet())
        std::printf("\n%s\n", table.render().c_str());

    printShapeNotes({
        "a naive (a6,a5) banking scheme conflicts on a significant "
        "fraction of successive block pairs (sequential fetch rows "
        "alternate cleanly, but taken branches and tight loops "
        "collide)",
        "the EV8 computation produces exactly zero conflicts on every "
        "benchmark -- the Section 6.2 theorem, measured",
        "bank usage stays roughly balanced, so capacity is not wasted",
    });
    return ctx.finish();
}
