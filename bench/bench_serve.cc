/**
 * @file
 * Prediction-as-a-service daemon: the experiment engine behind a
 * streaming protocol (serve/protocol.hh, schema ev8-serve-v1).
 *
 * Two transports share one PredictionServer:
 *
 *  - `--socket=<path>`: listen on an AF_UNIX stream socket; each
 *    accepted connection gets its own thread, so N clients can open,
 *    stream and wait on sessions concurrently. The accept loop exits
 *    after a client sends {"op":"shutdown"}.
 *  - no `--socket`: stdio loopback -- requests on stdin, one reply per
 *    line on stdout, until EOF or shutdown. Combine with `--quiet` so
 *    the human banner does not interleave with protocol output.
 *
 * The uniform bench surface applies: `--trace-out` captures the
 * serve.accept / serve.enqueue / serve.stall / serve.session_run /
 * serve.snapshot phases on the Perfetto timeline, `--jobs` caps
 * concurrently simulating sessions, and `--json`/`--csv` write the
 * (row-less) harness artifact with the usual telemetry block.
 *
 * Exit codes (the shared bench table):
 *
 *     0  clean shutdown, every served cell completed
 *     2  bad command line or environment knob
 *     3  served sessions recorded cell failures (partial results were
 *        delivered to their clients)
 *     4  fatal transport error (socket bind/accept, artifact I/O)
 */

#include <atomic>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "common/env.hh"
#include "serve/server.hh"
#include "serve_io.hh"

using namespace ev8;

namespace
{

/** One accepted connection: pump request lines until the peer hangs up. */
void
serveConnection(PredictionServer &server, int fd)
{
    serveio::LineChannel channel(fd);
    std::string line;
    while (channel.readLine(line)) {
        if (!channel.writeLine(server.handle(line)))
            return;
        if (server.shutdownRequested())
            return;
    }
}

int
runSocketDaemon(PredictionServer &server, const std::string &path)
{
    std::string err;
    const int listen_fd = serveio::listenUnix(path, err);
    if (listen_fd < 0) {
        std::fprintf(stderr, "bench_serve: %s\n", err.c_str());
        return kExitFatal;
    }
    if (!benchQuiet())
        std::fprintf(stderr, "listening on %s\n", path.c_str());

    std::vector<std::thread> connections;
    int fate = kExitOk;
    while (!server.shutdownRequested()) {
        const int fd = serveio::acceptWithTimeout(listen_fd, 200);
        if (fd == -1)
            continue; // poll timeout: re-check the shutdown flag
        if (fd == -2) {
            std::fprintf(stderr, "bench_serve: accept: %s\n",
                         std::strerror(errno));
            fate = kExitFatal;
            break;
        }
        connections.emplace_back(
            [&server, fd] { serveConnection(server, fd); });
    }
    for (std::thread &t : connections)
        t.join();
    ::close(listen_fd);
    ::unlink(path.c_str());
    return fate;
}

int
runStdioLoopback(PredictionServer &server)
{
    std::string line;
    while (std::getline(std::cin, line)) {
        std::fputs(server.handle(line).c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
        if (server.shutdownRequested())
            break;
    }
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    std::string maxSessions;
    const BenchOptionHandler extra = [&](const char *arg) {
        const auto value = [&](const char *opt) -> const char * {
            const size_t len = std::strlen(opt);
            if (std::strncmp(arg, opt, len) == 0 && arg[len] == '=')
                return arg + len + 1;
            return nullptr;
        };
        if (const char *v = value("--socket")) {
            socketPath = v;
            return true;
        }
        if (const char *v = value("--max-sessions")) {
            maxSessions = v;
            return true;
        }
        return false;
    };

    BenchContext ctx(
        argc, argv, "Serve", "Prediction-as-a-service daemon", extra,
        "  --socket=<path>    listen on an AF_UNIX socket (default:\n"
        "                     stdio loopback; use with --quiet)\n"
        "  --max-sessions=<N> admission limit, overrides\n"
        "                     EV8_SERVE_MAX_SESSIONS\n");

    ServeLimits limits = PredictionServer::defaultLimits();
    if (!maxSessions.empty()) {
        try {
            limits.maxSessions = static_cast<size_t>(
                parseStrictU64(maxSessions, 1, 256));
        } catch (const std::exception &err) {
            std::fprintf(stderr,
                         "bench_serve: bad value for --max-sessions: "
                         "%s\n",
                         err.what());
            return kExitUsage;
        }
    }
    PredictionServer server(limits, ctx.args().jobs);

    const int fate = socketPath.empty()
        ? runStdioLoopback(server)
        : runSocketDaemon(server, socketPath);

    const uint64_t failed = server.failedCellsTotal();
    if (!benchQuiet()) {
        std::fprintf(stderr,
                     "serve done: %llu failed cell(s) across sessions\n",
                     static_cast<unsigned long long>(failed));
    }

    const int artifacts = ctx.finish();
    if (fate != kExitOk)
        return fate;
    if (artifacts != kExitOk)
        return artifacts;
    return failed == 0 ? kExitOk : kExitPartial;
}
