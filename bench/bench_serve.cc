/**
 * @file
 * Prediction-as-a-service daemon: the experiment engine behind a
 * streaming protocol (serve/protocol.hh, schema ev8-serve-v1).
 *
 * Three transports share one PredictionServer:
 *
 *  - `--socket=<path>`: listen on an AF_UNIX stream socket.
 *  - `--tcp=<host:port>`: listen on a TCP socket (port 0 binds an
 *    ephemeral port; `--port-file` writes the bound port for scripts).
 *    May be combined with `--socket` -- both listeners feed the same
 *    accept loop and the same server, and the wire bytes are
 *    identical, so artifacts cannot depend on the transport.
 *  - neither: stdio loopback -- requests on stdin, one reply per line
 *    on stdout, until EOF or shutdown. Combine with `--quiet` so the
 *    human banner does not interleave with protocol output.
 *
 * Each accepted connection gets its own thread, so N clients can open,
 * stream and wait on sessions concurrently. The accept loop exits
 * after a client sends {"op":"shutdown"} -- or on SIGTERM/SIGINT,
 * which triggers a graceful drain: no new sessions are admitted
 * (typed "draining" refusals), in-flight sessions finish inside
 * EV8_SERVE_DRAIN_MS (default 5000; stragglers past the deadline are
 * force-expired with structured failure records), and the process
 * exits by the usual fate table below -- 0 when everything served
 * cleanly, 3 when any cell failed (including drain force-expiry).
 *
 * Hostile peers are survivable by construction: request lines are
 * bounded (1 MiB) and NUL-free or the connection gets a typed error
 * reply and is closed; with EV8_SERVE_IDLE_TIMEOUT_MS armed, vanished
 * clients' connections and session leases are reclaimed on the
 * EV8_SERVE_HEARTBEAT_MS cadence.
 *
 * The uniform bench surface applies: `--trace-out` captures the
 * serve.accept / serve.enqueue / serve.stall / serve.session_run /
 * serve.snapshot phases on the Perfetto timeline, `--jobs` caps
 * concurrently simulating sessions, and `--json`/`--csv` write the
 * (row-less) harness artifact with the usual telemetry block.
 *
 * Exit codes (the shared bench table):
 *
 *     0  clean shutdown/drain, every served cell completed
 *     2  bad command line or environment knob
 *     3  served sessions recorded cell failures (partial results were
 *        delivered to their clients, or a drain/lease expiry failed
 *        abandoned cells)
 *     4  fatal transport error (socket bind/accept, artifact I/O)
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "bench_common.hh"
#include "common/env.hh"
#include "serve/daemon.hh"
#include "serve/server.hh"
#include "serve/transport.hh"

using namespace ev8;

namespace
{

volatile std::sig_atomic_t g_stop = 0;

void
onStopSignal(int)
{
    g_stop = 1;
}

int
runStdioLoopback(PredictionServer &server)
{
    std::string line;
    while (std::getline(std::cin, line)) {
        std::fputs(server.handle(line).c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
        if (server.shutdownRequested())
            break;
    }
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    std::string tcpSpec;
    std::string portFile;
    std::string maxSessions;
    const BenchOptionHandler extra = [&](const char *arg) {
        const auto value = [&](const char *opt) -> const char * {
            const size_t len = std::strlen(opt);
            if (std::strncmp(arg, opt, len) == 0 && arg[len] == '=')
                return arg + len + 1;
            return nullptr;
        };
        if (const char *v = value("--socket")) {
            socketPath = v;
            return true;
        }
        if (const char *v = value("--tcp")) {
            tcpSpec = v;
            return true;
        }
        if (const char *v = value("--port-file")) {
            portFile = v;
            return true;
        }
        if (const char *v = value("--max-sessions")) {
            maxSessions = v;
            return true;
        }
        return false;
    };

    BenchContext ctx(
        argc, argv, "Serve", "Prediction-as-a-service daemon", extra,
        "  --socket=<path>    listen on an AF_UNIX socket (default:\n"
        "                     stdio loopback; use with --quiet)\n"
        "  --tcp=<host:port>  listen on a TCP socket (port 0 = pick an\n"
        "                     ephemeral port); combinable with --socket\n"
        "  --port-file=<path> write the bound TCP port, for scripts\n"
        "                     that passed --tcp with port 0\n"
        "  --max-sessions=<N> admission limit, overrides\n"
        "                     EV8_SERVE_MAX_SESSIONS\n");

    ServeLimits limits = PredictionServer::defaultLimits();
    if (!maxSessions.empty()) {
        try {
            limits.maxSessions = static_cast<size_t>(
                parseStrictU64(maxSessions, 1, 256));
        } catch (const std::exception &err) {
            std::fprintf(stderr,
                         "bench_serve: bad value for --max-sessions: "
                         "%s\n",
                         err.what());
            return kExitUsage;
        }
    }

    DaemonOptions opts;
    opts.unixPath = socketPath;
    opts.drainMs = strictEnvU64("EV8_SERVE_DRAIN_MS", 0, 600000, 5000);
    opts.stopFlag = &g_stop;
    if (!tcpSpec.empty()) {
        std::string err;
        if (!serveio::parseHostPort(tcpSpec, opts.tcpHost, opts.tcpPort,
                                    err)) {
            std::fprintf(stderr, "bench_serve: bad --tcp value: %s\n",
                         err.c_str());
            return kExitUsage;
        }
    }

    PredictionServer server(limits, ctx.args().jobs);

    int fate = kExitOk;
    if (socketPath.empty() && tcpSpec.empty()) {
        fate = runStdioLoopback(server);
    } else {
        ServeDaemon daemon(server, opts);
        std::string err;
        if (!daemon.listen(err)) {
            std::fprintf(stderr, "bench_serve: %s\n", err.c_str());
            return kExitFatal;
        }
        if (!portFile.empty()) {
            FILE *f = std::fopen(portFile.c_str(), "w");
            if (!f) {
                std::fprintf(stderr,
                             "bench_serve: cannot write %s: %s\n",
                             portFile.c_str(), std::strerror(errno));
                return kExitFatal;
            }
            std::fprintf(f, "%u\n", unsigned{daemon.boundTcpPort()});
            std::fclose(f);
        }
        if (!benchQuiet()) {
            if (!socketPath.empty())
                std::fprintf(stderr, "listening on %s\n",
                             socketPath.c_str());
            if (!tcpSpec.empty())
                std::fprintf(stderr, "listening on %s:%u\n",
                             opts.tcpHost.c_str(),
                             unsigned{daemon.boundTcpPort()});
        }

        // Graceful drain on the conventional daemon stop signals. The
        // handler only sets a flag; the accept loop notices within one
        // poll tick.
        std::signal(SIGTERM, onStopSignal);
        std::signal(SIGINT, onStopSignal);

        if (!daemon.run()) {
            std::fprintf(stderr, "bench_serve: accept failed\n");
            fate = kExitFatal;
        }
        if (g_stop && !benchQuiet()) {
            std::fprintf(stderr, "drained on signal (%s)\n",
                         daemon.drainedClean()
                             ? "all sessions finished"
                             : "stragglers force-expired");
        }
    }

    const uint64_t failed = server.failedCellsTotal();
    if (!benchQuiet()) {
        std::fprintf(stderr,
                     "serve done: %llu failed cell(s) across sessions\n",
                     static_cast<unsigned long long>(failed));
    }

    const int artifacts = ctx.finish();
    if (fate != kExitOk)
        return fate;
    if (artifacts != kExitOk)
        return artifacts;
    return failed == 0 ? kExitOk : kExitPartial;
}
