/**
 * @file
 * Trace utilities: generate, inspect, and verify the binary trace files
 * the library uses in place of the paper's Atom traces.
 *
 * Usage:
 *     trace_tools gen <benchmark> <branches> <file>   generate a trace
 *     trace_tools stats <file>                        Table 2 style stats
 *     trace_tools dump <file> [count]                 print records
 *     trace_tools verify <file>                       check wellformedness
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "trace/trace_io.hh"
#include "workloads/suite.hh"

using namespace ev8;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  trace_tools gen <benchmark> <branches> <file>\n"
                 "  trace_tools stats <file>\n"
                 "  trace_tools dump <file> [count]\n"
                 "  trace_tools verify <file>\n");
    return 2;
}

int
cmdGen(int argc, char **argv)
{
    if (argc < 5)
        return usage();
    const Benchmark &bench = findBenchmark(argv[2]);
    const uint64_t branches = std::strtoull(argv[3], nullptr, 10);
    const Trace trace = generateTrace(bench.profile, branches);
    writeTraceFile(argv[4], trace);
    std::printf("wrote %zu records (%llu instructions) to %s\n",
                trace.size(),
                static_cast<unsigned long long>(trace.instructionCount()),
                argv[4]);
    return 0;
}

int
cmdStats(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const Trace trace = readTraceFile(argv[2]);
    const TraceStats s = trace.stats();
    std::printf("name:                  %s\n", trace.name().c_str());
    std::printf("records:               %zu\n", trace.size());
    std::printf("instructions:          %llu\n",
                static_cast<unsigned long long>(s.instructions));
    std::printf("dynamic cond branches: %llu\n",
                static_cast<unsigned long long>(s.dynamicCondBranches));
    std::printf("static cond branches:  %llu\n",
                static_cast<unsigned long long>(s.staticCondBranches));
    std::printf("all dynamic CTIs:      %llu\n",
                static_cast<unsigned long long>(s.dynamicBranches));
    std::printf("taken rate:            %.3f\n", s.takenRate());
    std::printf("cond branch density:   1 per %.1f instructions\n",
                double(s.instructions) / double(s.dynamicCondBranches));
    return 0;
}

int
cmdDump(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const Trace trace = readTraceFile(argv[2]);
    const size_t count = argc > 3
        ? std::strtoull(argv[3], nullptr, 10) : 20;
    std::printf("start pc 0x%llx\n",
                static_cast<unsigned long long>(trace.startPc()));
    for (size_t i = 0; i < trace.size() && i < count; ++i) {
        const BranchRecord &r = trace.records()[i];
        std::printf("%6zu  0x%010llx  %-8s %-9s -> 0x%010llx\n", i,
                    static_cast<unsigned long long>(r.pc),
                    branchTypeName(r.type),
                    r.isConditional() ? (r.taken ? "taken" : "not-taken")
                                      : "",
                    static_cast<unsigned long long>(r.target));
    }
    return 0;
}

int
cmdVerify(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const Trace trace = readTraceFile(argv[2]);
    if (!trace.isWellFormed()) {
        std::printf("MALFORMED: %s\n", argv[2]);
        return 1;
    }
    std::printf("ok: %zu records, well-formed\n", trace.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    try {
        if (std::strcmp(argv[1], "gen") == 0)
            return cmdGen(argc, argv);
        if (std::strcmp(argv[1], "stats") == 0)
            return cmdStats(argc, argv);
        if (std::strcmp(argv[1], "dump") == 0)
            return cmdDump(argc, argv);
        if (std::strcmp(argv[1], "verify") == 0)
            return cmdVerify(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
