/**
 * @file
 * SMT example: run several benchmarks as simultaneous threads over one
 * shared EV8 predictor (Section 3), comparing per-thread history
 * registers (the EV8 design) against a naively shared register.
 *
 * Usage: smt_threads [branches] [bench...]
 *        (default: 200000 gcc go)
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/ev8_predictor.hh"
#include "sim/smt.hh"
#include "workloads/suite.hh"

using namespace ev8;

int
main(int argc, char **argv)
{
    const uint64_t branches =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
    std::vector<std::string> names;
    for (int i = 2; i < argc; ++i)
        names.push_back(argv[i]);
    if (names.empty())
        names = {"gcc", "go"};

    std::printf("SMT: %zu threads, %llu conditional branches each, one "
                "shared 352 Kbit EV8 predictor\n\n",
                names.size(), static_cast<unsigned long long>(branches));

    std::vector<Trace> traces;
    std::vector<const Trace *> thread_ptrs;
    for (const auto &name : names) {
        std::fprintf(stderr, "  generating %s ...\n", name.c_str());
        traces.push_back(
            generateTrace(findBenchmark(name).profile, branches));
    }
    for (const auto &t : traces)
        thread_ptrs.push_back(&t);

    TextTable table;
    table.header({"thread", "alone", "SMT per-thread hist",
                  "SMT shared hist"});

    // Baselines: each thread alone on its own predictor.
    std::vector<double> alone;
    for (const auto &t : traces) {
        Ev8Predictor p;
        alone.push_back(
            simulateTrace(t, p, SimConfig::ev8()).stats.mispKI());
    }

    SmtConfig per_thread;
    per_thread.sim = SimConfig::ev8();
    SmtConfig shared = per_thread;
    shared.perThreadHistory = false;

    Ev8Predictor p1, p2;
    const auto good = simulateSmt(thread_ptrs, p1, per_thread);
    const auto bad = simulateSmt(thread_ptrs, p2, shared);

    for (size_t i = 0; i < traces.size(); ++i) {
        table.row({good[i].name, fmt(alone[i], 2),
                   fmt(good[i].sim.stats.mispKI(), 2),
                   fmt(bad[i].sim.stats.mispKI(), 2)});
    }
    std::printf("misp/KI per thread:\n\n%s\n", table.render().c_str());
    std::printf("Shared tables degrade gracefully; a shared *history* "
                "register does not (Section 3).\n");
    return 0;
}
