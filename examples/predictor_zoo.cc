/**
 * @file
 * Predictor zoo: compare any set of prediction schemes on any suite
 * benchmark -- the tool for "which predictor fits my storage budget?"
 * questions.
 *
 * Usage:
 *     predictor_zoo [benchmark] [branches] [spec...]
 *
 *     benchmark  one of compress gcc go ijpeg li m88ksim perl vortex
 *                (default gcc)
 *     branches   dynamic conditional branches to simulate
 *                (default 500000)
 *     spec...    predictor specs (see --help); default: a
 *                representative set from every family
 *
 * Examples:
 *     predictor_zoo go 1000000
 *     predictor_zoo gcc 500000 gshare:16:14 yags:13:13:17 ev8size
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/ev8_predictor.hh"
#include "predictors/factory.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

using namespace ev8;

namespace
{

void
usage()
{
    std::printf("usage: predictor_zoo [benchmark] [branches] [spec...]\n"
                "known specs:\n");
    for (const auto &spec : knownPredictorSpecs())
        std::printf("  %s\n", spec.c_str());
    std::printf("  ev8hw (the hardware-constrained EV8 model)\n");
}

PredictorPtr
make(const std::string &spec)
{
    if (spec == "ev8hw")
        return std::make_unique<Ev8Predictor>();
    return makePredictor(spec);
}

/** EV8-family specs want the lghist information vector. */
SimConfig
configFor(const std::string &spec)
{
    if (spec == "ev8hw" || spec == "ev8size")
        return SimConfig::ev8();
    return SimConfig::ghist();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--help") == 0) {
        usage();
        return 0;
    }

    const std::string bench_name = argc > 1 ? argv[1] : "gcc";
    const uint64_t branches =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500000;

    std::vector<std::string> specs;
    for (int i = 3; i < argc; ++i)
        specs.push_back(argv[i]);
    if (specs.empty()) {
        specs = {"bimodal:14",       "gshare:16:14",
                 "gas:16:10",        "agree:16:14",
                 "egskew:15:14",     "bimode:15:13:15",
                 "yags:14:14:23",    "2bcgskew:15:0:13:16:23",
                 "perceptron:11:24", "tournament",
                 "ev8size",          "ev8hw"};
    }

    const Benchmark *bench = nullptr;
    try {
        bench = &findBenchmark(bench_name);
    } catch (const std::out_of_range &) {
        std::fprintf(stderr, "unknown benchmark '%s'\n",
                     bench_name.c_str());
        usage();
        return 1;
    }

    std::printf("benchmark %s, %llu conditional branches\n\n",
                bench_name.c_str(),
                static_cast<unsigned long long>(branches));
    const Trace trace = generateTrace(bench->profile, branches);

    TextTable table;
    table.header({"predictor", "storage", "misp/KI", "misp rate %",
                  "accuracy %"});
    for (const auto &spec : specs) {
        PredictorPtr predictor;
        try {
            predictor = make(spec);
        } catch (const std::invalid_argument &e) {
            std::fprintf(stderr, "skipping '%s': %s\n", spec.c_str(),
                         e.what());
            continue;
        }
        std::fprintf(stderr, "  %s ...\n", predictor->name().c_str());
        const SimResult r = simulateTrace(trace, *predictor,
                                          configFor(spec));
        table.row({predictor->name(),
                   formatKbits(predictor->storageBits()),
                   fmt(r.stats.mispKI(), 3),
                   fmt(100.0 * r.stats.mispRate(), 3),
                   fmt(100.0 * r.stats.accuracy(), 3)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
