/**
 * @file
 * Front-end walkthrough: the EV8 fetch pipeline of Section 2, end to
 * end, on one benchmark.
 *
 * For every fetch block the example drives:
 *   - the line predictor (fast next-block guess, Section 2),
 *   - the bank-number computation (Section 6.2) with a live
 *     single-ported-array port checker (Section 7.1),
 *   - the EV8 conditional predictor through its hardware-faithful
 *     block-wide read (all 8 predictions from one access per logical
 *     table),
 *   - the coarse timing model translating both predictors' accuracy
 *     into fetch bandwidth.
 *
 * Usage: frontend_pipeline [benchmark] [branches]
 */

#include <cstdio>
#include <cstdlib>

#include "core/ev8_predictor.hh"
#include "frontend/bank_scheduler.hh"
#include "frontend/fetch_block.hh"
#include "frontend/jump_predictor.hh"
#include "frontend/lghist.hh"
#include "frontend/pipeline.hh"
#include "frontend/ras.hh"
#include "workloads/suite.hh"

using namespace ev8;

int
main(int argc, char **argv)
{
    const std::string bench_name = argc > 1 ? argv[1] : "perl";
    const uint64_t branches =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300000;

    const Benchmark &bench = findBenchmark(bench_name);
    std::printf("simulating the EV8 front end on %s (%llu cond. "
                "branches)\n\n",
                bench_name.c_str(),
                static_cast<unsigned long long>(branches));
    const Trace trace = generateTrace(bench.profile, branches);

    Ev8Predictor predictor;
    ReturnAddressStack ras(16);
    JumpPredictor jumps(12, 8);
    LghistTracker lghist(/*include_path=*/true);
    DelayedHistory delayed(3); // three-fetch-blocks-old view
    BankScheduler banks;
    SinglePortChecker ports;
    FrontEndPipeline pipeline(/*line_log2_entries=*/12);

    uint64_t path_z = 0;
    uint64_t slot = 0;
    uint64_t cond = 0, cond_wrong = 0, port_conflicts = 0;

    FetchBlockBuilder builder;
    builder.begin(trace.startPc());

    auto on_block = [&](const FetchBlock &block) {
        // Two fetch blocks share a cycle: restart the port checker on
        // even slots. The bank computation guarantees no conflicts.
        if ((slot++ & 1) == 0)
            ports.beginCycle();

        Ev8IndexInput in;
        in.blockAddr = block.address;
        in.hist = delayed.view();
        in.zAddr = path_z;
        in.bank = banks.assign(block.address);
        if (!ports.access(in.bank))
            ++port_conflicts;

        // One access per logical table yields all 8 predictions.
        const Ev8BlockPrediction preds = predictor.predictBlock(in);

        bool block_mispredicted = false;
        for (unsigned i = 0; i < block.numBranches; ++i) {
            const BlockBranch &br = block.branches[i];
            const unsigned offset = unsigned(br.pc >> 2) & 7;
            const bool predicted = preds.takenAtOffset[offset];
            ++cond;
            if (predicted != br.taken) {
                ++cond_wrong;
                block_mispredicted = true;
            }
            // Train through the per-branch interface (commit path).
            BranchSnapshot snap;
            snap.pc = br.pc;
            snap.blockAddr = block.address;
            snap.hist.indexHist = in.hist;
            snap.hist.pathZ = in.zAddr;
            snap.bank = static_cast<uint8_t>(in.bank);
            predictor.update(snap, br.taken, predictor.predict(snap));
        }

        pipeline.onBlock(block, block_mispredicted);
        lghist.onBlock(block);
        delayed.advance(lghist.value());
        path_z = block.address;
    };

    for (const auto &rec : trace.records()) {
        // The other PC-address-generation structures of Section 2: the
        // return-address stack and the indirect-jump predictor.
        switch (rec.type) {
          case BranchType::Call:
            ras.pushCall(rec.pc);
            break;
          case BranchType::Indirect:
            jumps.update(rec.pc, rec.target);
            ras.pushCall(rec.pc); // our indirects are dispatch calls
            break;
          case BranchType::Return:
            ras.recordOutcome(ras.popReturn(), rec.target);
            break;
          default:
            break;
        }
        builder.feed(rec, on_block);
    }
    builder.flush(on_block);

    const FrontEndStats &fe = pipeline.stats();
    std::printf("fetch blocks:             %llu\n",
                static_cast<unsigned long long>(fe.blocks));
    std::printf("instructions fetched:     %llu\n",
                static_cast<unsigned long long>(fe.instructions));
    std::printf("line predictor accuracy:  %.2f%%  (simple indexing -- "
                "deliberately modest, Section 2)\n",
                100.0 * fe.lineAccuracy());
    std::printf("cond. branch accuracy:    %.3f%%  (%llu / %llu wrong)\n",
                100.0 * (1.0 - double(cond_wrong) / double(cond)),
                static_cast<unsigned long long>(cond_wrong),
                static_cast<unsigned long long>(cond));
    std::printf("bank port conflicts:      %llu  (zero by construction, "
                "Section 6.2)\n",
                static_cast<unsigned long long>(port_conflicts));
    std::printf("estimated fetch IPC:      %.2f of 16 peak\n",
                fe.fetchIpc());
    std::printf("cycles modelled:          %llu (line redirect 2, "
                "branch penalty 14)\n",
                static_cast<unsigned long long>(fe.cycles));
    std::printf("return-address stack:     %.2f%% of %llu returns "
                "correct (depth 16)\n",
                100.0 * ras.accuracy(),
                static_cast<unsigned long long>(ras.returnsSeen()));
    std::printf("indirect-jump predictor:  %.2f%% of %llu indirects "
                "correct\n",
                100.0 * jumps.accuracy(),
                static_cast<unsigned long long>(jumps.lookups()));
    return 0;
}
