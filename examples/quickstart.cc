/**
 * @file
 * Quickstart: the smallest end-to-end use of the library.
 *
 *  1. Generate a synthetic workload trace (the "gcc" profile).
 *  2. Construct the Alpha EV8 predictor (352 Kbits, all hardware
 *     constraints) and a bimodal baseline.
 *  3. Simulate both with the paper's trace-driven immediate-update
 *     methodology and print misp/KI.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "core/ev8_predictor.hh"
#include "predictors/bimodal.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace ev8;

    // 1. A 500K-conditional-branch trace of the synthetic "gcc".
    const Benchmark &bench = findBenchmark("gcc");
    std::printf("generating %s trace ...\n", bench.profile.name.c_str());
    const Trace trace = generateTrace(bench.profile, 500000);
    const TraceStats stats = trace.stats();
    std::printf("  %llu conditional branches, %llu static sites, "
                "%llu instructions\n",
                static_cast<unsigned long long>(stats.dynamicCondBranches),
                static_cast<unsigned long long>(stats.staticCondBranches),
                static_cast<unsigned long long>(stats.instructions));

    // 2. The EV8 predictor consumes the EV8 information vector:
    //    three-fetch-blocks-old lghist plus path information; the
    //    simulator maintains all of it (SimConfig::ev8()).
    Ev8Predictor ev8;
    const SimResult ev8_result = simulateTrace(trace, ev8,
                                               SimConfig::ev8());

    //    The bimodal baseline needs only the PC.
    BimodalPredictor bimodal(14);
    const SimResult bim_result = simulateTrace(trace, bimodal,
                                               SimConfig::ghist());

    // 3. Report.
    std::printf("\n%-28s %10s  %s\n", "predictor", "storage", "result");
    std::printf("%-28s %10s  %s\n", ev8.name().c_str(),
                formatKbits(ev8.storageBits()).c_str(),
                ev8_result.stats.summary().c_str());
    std::printf("%-28s %10s  %s\n", bimodal.name().c_str(),
                formatKbits(bimodal.storageBits()).c_str(),
                bim_result.stats.summary().c_str());

    std::printf("\nlghist compression: %.2f branches per history bit "
                "(Table 3)\n",
                ev8_result.lghistRatio());
    return 0;
}
