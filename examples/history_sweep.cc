/**
 * @file
 * History-length exploration from the command line -- the Section 8.2
 * "best history length" methodology as a tool.
 *
 * Usage:
 *     history_sweep <spec-template> [lengths] [branches]
 *
 * The spec template must contain an '@' where the history length goes,
 * e.g. "gshare:16:@" or "2bcgskew:16:0:13:15:@". Lengths default to
 * 2,6,10,...,30; branches to 300000 per benchmark.
 *
 * Example:
 *     history_sweep gshare:14:@ 4,8,12,16,20 200000
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "predictors/factory.hh"
#include "sim/sweep.hh"

using namespace ev8;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: history_sweep <spec-with-@> [lengths] "
                     "[branches]\n"
                     "e.g.:  history_sweep gshare:16:@ 4,8,12,16,20\n");
        return 2;
    }
    const std::string tmpl = argv[1];
    const size_t at = tmpl.find('@');
    if (at == std::string::npos) {
        std::fprintf(stderr, "spec template needs an '@' placeholder\n");
        return 2;
    }

    std::vector<unsigned> lengths;
    if (argc > 2) {
        std::istringstream in(argv[2]);
        std::string tok;
        while (std::getline(in, tok, ','))
            lengths.push_back(unsigned(std::stoul(tok)));
    } else {
        for (unsigned l = 2; l <= 30; l += 4)
            lengths.push_back(l);
    }
    const uint64_t branches =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 300000;

    SuiteRunner runner(branches);
    auto make = [&](unsigned len) {
        std::string spec = tmpl;
        spec.replace(at, 1, std::to_string(len));
        return makePredictor(spec);
    };

    std::fprintf(stderr, "sweeping %zu lengths over the suite ...\n",
                 lengths.size());
    const auto points =
        sweepHistoryLengths(runner, make, lengths, SimConfig::ghist());

    TextTable table;
    std::vector<std::string> header{"history"};
    for (size_t i = 0; i < runner.size(); ++i)
        header.push_back(runner.name(i));
    header.push_back("amean");
    table.header(std::move(header));
    for (const auto &p : points) {
        std::vector<std::string> cells{std::to_string(p.histLen)};
        for (const auto &r : p.perBench)
            cells.push_back(fmt(r.sim.stats.mispKI(), 2));
        cells.push_back(fmt(p.avgMispKI, 3));
        table.row(std::move(cells));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("best history length: %u (%.3f misp/KI average)\n",
                bestPoint(points).histLen, bestPoint(points).avgMispKI);
    return 0;
}
